// Scenario-matrix regression harness.
//
// Drives the full pipeline — workload generation -> online predictor ->
// SKP/KP planning -> cache with a classical replacement policy -> realized
// network cost — across the cross-product of
//   {predictor}  x {replacement policy} x {network profile} x {workload}
// with every random stream derived from one fixed seed, so a scenario's
// counters are bit-reproducible. test_scenario_matrix.cpp asserts
// structural invariants over the whole matrix (metrics conservation,
// prefetch bandwidth budget) and pins golden hit-rates on every combo,
// giving future sharding/async/perf refactors a behavioral safety net.
//
// Since the unified simulation runtime landed (src/sim/runtime.hpp) this
// harness is a thin mapping: a ScenarioConfig names a SimSpec and
// run_scenario dispatches it through the driver registry. PlanMode picks
// the execution substrate:
//   * EmptyCache    — Scenario driver, plan over N \ C with
//                     PrefetchEngine::plan; the ReplacementPolicy evicts
//                     for both prefetches and demand misses.
//   * PrArbitration — Scenario driver, the Figure-6 path:
//                     plan_with_cache runs Pr-arbitration against the
//                     live cache and names its own victims; the
//                     ReplacementPolicy still governs demand misses.
//   * NetsimDes     — NetsimDes driver: the same workload/predictor/net
//                     point executed on sim/netsim's ClientSession DES
//                     (prefetches and demand fetches serialized over the
//                     modeled link), locking the netsim path into the
//                     golden matrix.
//   * MultiClientDes — MultiClientDes driver: three clients with private
//                     caches/predictors replaying the same workload shape
//                     over ONE shared link (cfg.requests split across the
//                     clients, so the aggregate serves the same cycle
//                     count) — the golden rows are contention-grounded.
//   * FlashCrowd    — MultiClientDes with phase_align = 0.8: the
//                     clients' viewing times blend toward one shared
//                     herd schedule, so demand spikes hit the shared
//                     link together (hostile world #1).
//   * Churn         — MultiClientDes with a join/leave schedule: every
//                     400 time units of uptime a client departs (cache +
//                     frequency flush, cold predictor, plan-memo
//                     invalidation) and rejoins 60 later (hostile
//                     world #2).
//   * LinkSchedule  — NetsimDes over a piecewise time-varying link: the
//                     profile's nominal quality for 240 time units, then
//                     an 80-unit degraded window (quarter bandwidth,
//                     doubled latency), cycling (hostile world #4).
//                     Planning keeps seeing the static base link — the
//                     stale-estimate regime.
//   * Faulty        — NetsimDes with prefetch-fault injection
//                     (sim/fault.hpp): 15% outright attempt failure, 10%
//                     4x stalls, up to 3 attempts with 0.5 * 2^k backoff.
//                     Demand fetches stay reliable, so the conservation
//                     invariants hold and the goldens pin the
//                     retry/abandon books (hostile world #5).
//   * Overload      — MultiClientDes under the same fault regime with
//                     the adaptive overload controller engaged
//                     (core/overload.hpp): realized waiting against the
//                     calm baseline walks the fleet down the degradation
//                     rungs and back (hostile world #6).
// Hostile world #3 (the adversarial cache-thrashing stream) is a
// workload, not a mode: ScenarioWorkload::Adversarial.
#pragma once

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>

#include "sim/prefetch_cache.hpp"  // PredictorKind + to_string
#include "sim/runtime.hpp"

namespace skp::testing {

// The harness's cache-policy vocabulary IS the runtime's (same four
// policies, same lowercase tokens) — an alias, so a policy added to the
// runtime is immediately sweepable here and the two can never diverge.
using CachePolicyKind = ReplacementKind;
enum class ScenarioWorkload { MarkovChain, IidSkewy, TraceReplay, Adversarial };
enum class PlanMode {
  EmptyCache,
  PrArbitration,
  NetsimDes,
  MultiClientDes,
  FlashCrowd,
  Churn,
  LinkSchedule,
  Faulty,
  Overload,
};

inline const char* to_string(ScenarioWorkload w) {
  switch (w) {
    case ScenarioWorkload::MarkovChain: return "markov";
    case ScenarioWorkload::IidSkewy: return "iid";
    case ScenarioWorkload::TraceReplay: return "trace";
    case ScenarioWorkload::Adversarial: return "adv";
  }
  return "?";
}

inline const char* to_string(PlanMode m) {
  switch (m) {
    case PlanMode::EmptyCache: return "empty";
    case PlanMode::PrArbitration: return "pr";
    case PlanMode::NetsimDes: return "des";
    case PlanMode::MultiClientDes: return "mc";
    case PlanMode::FlashCrowd: return "flash";
    case PlanMode::Churn: return "churn";
    case PlanMode::LinkSchedule: return "link";
    case PlanMode::Faulty: return "fault";
    case PlanMode::Overload: return "over";
  }
  return "?";
}

// A named (bandwidth, latency) point fed to sim/netsim's NetConfig.
struct NetProfile {
  const char* name;
  double bandwidth;
  double latency;
};

// The three profiles the matrix sweeps: item sizes are 1..30 size units,
// so retrieval times span roughly 0.4-4 (lan), 3-32 (wan), 9-125 (modem)
// time units against viewing times of 10-60.
inline constexpr NetProfile kLan{"lan", 8.0, 0.25};
inline constexpr NetProfile kWan{"wan", 1.0, 2.0};
inline constexpr NetProfile kModem{"modem", 0.25, 5.0};

struct ScenarioConfig {
  PredictorKind predictor = PredictorKind::Markov1;  // Markov1 | Lz78 | Ppm
  CachePolicyKind cache_policy = CachePolicyKind::LRU;
  NetProfile net = kLan;
  ScenarioWorkload workload = ScenarioWorkload::MarkovChain;
  PlanMode plan_mode = PlanMode::EmptyCache;

  std::size_t n_items = 24;
  std::size_t cache_capacity = 6;
  std::size_t requests = 1200;
  // Observe-only prefix: the predictor trains before planning starts, so
  // early near-uniform distributions don't dominate the goldens.
  std::size_t predictor_warmup = 64;
  // Smoothed predictors put slivers of mass everywhere; entries below this
  // floor are dropped before planning (candidate shortlist).
  double min_prob = 0.02;
  PrefetchPolicy policy = PrefetchPolicy::SKP;
  std::uint64_t seed = 2026;
};

struct ScenarioResult {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;            // served from cache (in NetsimDes
                                     // mode: cache-resident at request
                                     // time, even if still in flight)
  std::uint64_t demand_fetches = 0;  // misses, fetched on demand
  std::uint64_t prefetch_fetches = 0;
  std::uint64_t plans = 0;           // planning rounds that fetched anything
  double prefetch_network_time = 0.0;
  double demand_network_time = 0.0;
  double network_time = 0.0;  // prefetch + demand, accumulated separately
  // Plans violating the stretch-knapsack bandwidth budget (all fetches but
  // the last must complete within the viewing time v; for KP the whole
  // plan must). The matrix asserts this stays 0. (Not evaluated by the
  // NetsimDes driver, whose link model enforces serialization itself.)
  std::uint64_t budget_violations = 0;
  double worst_budget_overrun = 0.0;

  double hit_rate() const {
    return requests ? static_cast<double>(hits) /
                          static_cast<double>(requests)
                    : 0.0;
  }

  bool operator==(const ScenarioResult&) const = default;
};

inline std::string scenario_name(const ScenarioConfig& cfg) {
  std::string name = skp::to_string(cfg.predictor);
  for (auto& c : name) c = static_cast<char>(std::tolower(c));
  name += '_';
  name += to_string(cfg.cache_policy);
  name += '_';
  name += cfg.net.name;
  name += '_';
  name += to_string(cfg.workload);
  if (cfg.plan_mode != PlanMode::EmptyCache) {
    name += '_';
    name += to_string(cfg.plan_mode);
  }
  return name;
}

// Maps a scenario onto the unified runtime's descriptor. The workload
// parameters are the harness's historical ones, so the registry-backed
// runs reproduce the pre-runtime golden values bit for bit.
// MultiClientDes scenarios split cfg.requests across this many clients,
// so a contention row serves the same aggregate cycle count as the
// single-client rows it sits next to.
inline constexpr std::size_t kScenarioClients = 3;

inline SimSpec to_sim_spec(const ScenarioConfig& cfg) {
  SimSpec spec;
  switch (cfg.plan_mode) {
    case PlanMode::NetsimDes:
    case PlanMode::LinkSchedule:
    case PlanMode::Faulty:
      spec.driver = SimDriverKind::NetsimDes;
      break;
    case PlanMode::MultiClientDes:
    case PlanMode::FlashCrowd:
    case PlanMode::Churn:
    case PlanMode::Overload:
      spec.driver = SimDriverKind::MultiClientDes;
      spec.multi_client.clients = kScenarioClients;
      break;
    default:
      spec.driver = SimDriverKind::Scenario;
      break;
  }
  if (cfg.plan_mode == PlanMode::FlashCrowd) {
    spec.multi_client.phase_align = 0.8;
  } else if (cfg.plan_mode == PlanMode::Churn) {
    spec.multi_client.churn_period = 400.0;
    spec.multi_client.churn_downtime = 60.0;
  }
  if (cfg.plan_mode == PlanMode::Faulty ||
      cfg.plan_mode == PlanMode::Overload) {
    spec.fault.fail_rate = 0.15;
    spec.fault.stall_rate = 0.1;
    spec.fault.stall_factor = 4.0;
    spec.fault.retry.max_attempts = 3;
    spec.fault.retry.backoff_base = 0.5;
    spec.fault.retry.backoff_factor = 2.0;
  }
  if (cfg.plan_mode == PlanMode::Overload) {
    spec.overload.enabled = true;
    spec.overload.window = 32;
    spec.overload.degrade_ratio = 1.8;
    spec.overload.recover_ratio = 1.2;
    spec.overload.recover_windows = 2;
  }

  spec.workload.n_items = cfg.n_items;
  switch (cfg.workload) {
    case ScenarioWorkload::MarkovChain:
      spec.workload.kind = SimWorkloadKind::Markov;
      spec.workload.out_degree_lo = 4;
      spec.workload.out_degree_hi = 8;
      spec.workload.v_lo = 10.0;
      spec.workload.v_hi = 60.0;
      break;
    case ScenarioWorkload::IidSkewy:
      spec.workload.kind = SimWorkloadKind::Iid;
      spec.workload.method = ProbMethod::Skewy;
      spec.workload.iid_viewing_time = 30.0;
      break;
    case ScenarioWorkload::TraceReplay:
      spec.workload.kind = SimWorkloadKind::TraceText;
      spec.workload.out_degree_lo = 2;
      spec.workload.out_degree_hi = 6;
      spec.workload.v_lo = 5.0;
      spec.workload.v_hi = 40.0;
      break;
    case ScenarioWorkload::Adversarial:
      // Hot set of 8 against a 6-slot cache: the alternating cliques
      // never quite fit, thrashing the frequency books and the plan
      // caches (workload/adversarial_source.hpp).
      spec.workload.kind = SimWorkloadKind::Adversarial;
      spec.workload.adv_hot_set = 8;
      spec.workload.adv_escape = 0.02;
      spec.workload.v_lo = 10.0;
      spec.workload.v_hi = 60.0;
      break;
  }

  spec.policy = cfg.policy;
  spec.predictor = cfg.predictor;
  spec.predictor_min_prob = cfg.min_prob;
  spec.predictor_warmup = cfg.predictor_warmup;
  spec.cache_size = cfg.cache_capacity;
  spec.replacement = cfg.cache_policy;
  spec.pr_planning = cfg.plan_mode == PlanMode::PrArbitration;
  spec.bandwidth = cfg.net.bandwidth;
  spec.latency = cfg.net.latency;
  if (cfg.plan_mode == PlanMode::LinkSchedule) {
    // The profile's nominal quality, then a degraded window (quarter
    // bandwidth, doubled latency), cycling. Relative to the profile so
    // every net row degrades proportionally.
    spec.link_schedule = {
        {240.0, cfg.net.bandwidth, cfg.net.latency},
        {80.0, cfg.net.bandwidth / 4.0, cfg.net.latency * 2.0},
    };
  }
  if (spec.driver == SimDriverKind::MultiClientDes) {
    // Split the aggregate budget without dropping the remainder: the
    // first (requests % clients) clients serve one extra cycle. With the
    // historical 1200/3 the remainder is zero and no overrides are
    // emitted, so the pre-existing golden rows are untouched.
    const std::size_t base = cfg.requests / kScenarioClients;
    const std::size_t rem = cfg.requests % kScenarioClients;
    spec.requests = base;
    if (rem != 0) {
      spec.multi_client.overrides.resize(kScenarioClients);
      for (std::size_t c = 0; c < rem; ++c) {
        spec.multi_client.overrides[c].requests = base + 1;
      }
    }
  } else {
    spec.requests = cfg.requests;
  }
  spec.seed = cfg.seed;
  return spec;
}

inline ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  const SimSpec spec = to_sim_spec(cfg);
  const SimResult sim = run_sim(spec);
  ScenarioResult res;
  res.requests = sim.metrics.requests;
  // The DES modes serve a request from the cache whenever the item is
  // resident, even if its transfer is still completing (T > 0 then);
  // SimResult::resident_hits keeps the conservation invariant uniform
  // across modes (in the other modes it coincides with metrics.hits).
  const bool des = spec.driver == SimDriverKind::NetsimDes ||
                   spec.driver == SimDriverKind::MultiClientDes;
  res.hits = des ? sim.resident_hits() : sim.metrics.hits;
  res.demand_fetches = sim.metrics.demand_fetches;
  res.prefetch_fetches = sim.metrics.prefetch_fetches;
  res.plans = sim.plans;
  res.prefetch_network_time = sim.metrics.prefetch_network_time;
  res.demand_network_time = sim.metrics.demand_network_time;
  res.network_time = sim.metrics.network_time;
  res.budget_violations = sim.budget_violations;
  res.worst_budget_overrun = sim.worst_budget_overrun;
  return res;
}

}  // namespace skp::testing
