#include "core/item.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.hpp"

namespace skp {
namespace {

TEST(Instance, ValidInstancePasses) {
  const Instance inst = testing::small_instance();
  EXPECT_NO_THROW(inst.validate());
  EXPECT_EQ(inst.n(), 4u);
}

TEST(Instance, RejectsEmptyCatalog) {
  Instance inst;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Instance, RejectsSizeMismatch) {
  Instance inst;
  inst.P = {0.5, 0.5};
  inst.r = {1.0};
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Instance, RejectsNegativeProbability) {
  Instance inst;
  inst.P = {1.2, -0.2};
  inst.r = {1.0, 1.0};
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Instance, RejectsProbabilitySumOverOne) {
  Instance inst;
  inst.P = {0.7, 0.7};
  inst.r = {1.0, 1.0};
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Instance, AllowsSubUnitMass) {
  // Cache-aware planning works with P restricted to N \ C.
  Instance inst;
  inst.P = {0.2, 0.3};
  inst.r = {1.0, 2.0};
  inst.v = 1.0;
  EXPECT_NO_THROW(inst.validate());
}

TEST(Instance, RejectsNonPositiveRetrievalTime) {
  Instance inst;
  inst.P = {0.5, 0.5};
  inst.r = {1.0, 0.0};
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Instance, RejectsNegativeViewingTime) {
  Instance inst = testing::small_instance();
  inst.v = -1.0;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
}

TEST(Instance, ProfitIsPTimesR) {
  const Instance inst = testing::small_instance();
  EXPECT_DOUBLE_EQ(inst.profit(0), 5.0);
  EXPECT_DOUBLE_EQ(inst.profit(1), 6.0);
}

TEST(Instance, IdxRejectsNegative) {
  EXPECT_THROW(Instance::idx(-1), std::invalid_argument);
}

TEST(CanonicalOrder, SortsByProbabilityDescending) {
  const Instance inst = testing::small_instance();
  const auto order = canonical_order(inst);
  const std::vector<ItemId> expected{0, 1, 2, 3};
  EXPECT_EQ(order, expected);
}

TEST(CanonicalOrder, TieBrokenByRetrievalAscending) {
  Instance inst;
  inst.P = {0.25, 0.25, 0.25, 0.25};
  inst.r = {9.0, 3.0, 7.0, 5.0};
  inst.v = 10.0;
  const auto order = canonical_order(inst);
  const std::vector<ItemId> expected{1, 3, 2, 0};
  EXPECT_EQ(order, expected);
}

TEST(CanonicalOrder, FullTieBrokenById) {
  Instance inst;
  inst.P = {0.5, 0.5};
  inst.r = {4.0, 4.0};
  inst.v = 10.0;
  const auto order = canonical_order(inst);
  const std::vector<ItemId> expected{0, 1};
  EXPECT_EQ(order, expected);
}

TEST(CanonicalOrder, SubsetRestriction) {
  const Instance inst = testing::small_instance();
  const std::vector<ItemId> cand{3, 1};
  const auto order = canonical_order(inst, cand);
  const std::vector<ItemId> expected{1, 3};
  EXPECT_EQ(order, expected);
}

TEST(CanonicalOrder, SatisfiesEq5Predicate) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const Instance inst = testing::random_instance(rng);
    const auto order = canonical_order(inst);
    EXPECT_TRUE(is_canonically_sorted(inst, order));
  }
}

TEST(IsCanonicallySorted, DetectsViolation) {
  const Instance inst = testing::small_instance();
  const std::vector<ItemId> bad{1, 0};
  EXPECT_FALSE(is_canonically_sorted(inst, bad));
}

TEST(IsCanonicallySorted, EmptyAndSingleton) {
  const Instance inst = testing::small_instance();
  EXPECT_TRUE(is_canonically_sorted(inst, std::vector<ItemId>{}));
  EXPECT_TRUE(is_canonically_sorted(inst, std::vector<ItemId>{2}));
}

TEST(NormalizeProbabilities, SumsToOne) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  const auto p = normalize_probabilities(w);
  double sum = 0;
  for (double x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(p[3], 0.4, 1e-12);
}

TEST(NormalizeProbabilities, RejectsAllZero) {
  const std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(normalize_probabilities(w), std::invalid_argument);
}

TEST(NormalizeProbabilities, RejectsNegative) {
  const std::vector<double> w{1.0, -1.0};
  EXPECT_THROW(normalize_probabilities(w), std::invalid_argument);
}

TEST(NormalizeProbabilities, RejectsEmpty) {
  const std::vector<double> w;
  EXPECT_THROW(normalize_probabilities(w), std::invalid_argument);
}

}  // namespace
}  // namespace skp
