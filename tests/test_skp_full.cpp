#include "core/skp_full.hpp"

#include <gtest/gtest.h>

#include "core/access_model.hpp"
#include "core/brute_force.hpp"
#include "test_util.hpp"

namespace skp {
namespace {

TEST(SkpFull, ClosesTheTheorem1Gap) {
  // The DESIGN.md D8 counterexample: canonical search reaches g = 1, the
  // full space reaches g = 2.8 with the non-canonical order <1, 0>.
  Instance inst;
  inst.P = {0.6, 0.4};
  inst.r = {10.0, 1.0};
  inst.v = 5.0;
  const SkpSolution full = solve_skp_full(inst);
  EXPECT_DOUBLE_EQ(full.g, 2.8);
  EXPECT_EQ(full.F, (PrefetchList{1, 0}));
  EXPECT_DOUBLE_EQ(solve_skp(inst).g, 1.0);  // canonical search
}

TEST(SkpFull, MatchesFullBruteForceOnRandomGrid) {
  Rng rng(501);
  for (const std::size_t n : {2u, 4u, 6u, 8u, 10u, 12u}) {
    for (int trial = 0; trial < 40; ++trial) {
      testing::RandomInstanceOptions opt;
      opt.n = n;
      opt.v_hi = 30.0;  // small v: the regime where orders matter
      const Instance inst = testing::random_instance(rng, opt);
      const SkpSolution full = solve_skp_full(inst);
      const BruteForceResult bf = brute_force_skp(inst);
      EXPECT_NEAR(full.g, bf.g, 1e-9) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(SkpFull, NeverBelowCanonicalSolver) {
  Rng rng(503);
  for (int trial = 0; trial < 200; ++trial) {
    const Instance inst = testing::random_instance(rng);
    EXPECT_GE(solve_skp_full(inst).g, solve_skp(inst).g - 1e-9);
  }
}

TEST(SkpFull, ReturnedListValidAndConsistent) {
  Rng rng(505);
  for (int trial = 0; trial < 200; ++trial) {
    testing::RandomInstanceOptions opt;
    opt.n = 9;
    opt.v_hi = 40.0;
    const Instance inst = testing::random_instance(rng, opt);
    const SkpSolution sol = solve_skp_full(inst);
    EXPECT_TRUE(is_valid_prefetch_list(inst, sol.F));
    if (!sol.F.empty()) {
      EXPECT_NEAR(sol.g, access_improvement(inst, sol.F), 1e-9);
    }
  }
}

TEST(SkpFull, EmptyWhenNothingPays) {
  Instance inst;
  inst.P = {0.5, 0.5};
  inst.r = {100.0, 100.0};
  inst.v = 1.0;
  const SkpSolution sol = solve_skp_full(inst);
  EXPECT_TRUE(sol.F.empty());
  EXPECT_DOUBLE_EQ(sol.g, 0.0);
}

TEST(SkpFull, ZeroViewingTime) {
  Instance inst = testing::small_instance();
  inst.v = 0.0;
  EXPECT_TRUE(solve_skp_full(inst).F.empty());
}

TEST(SkpFull, ZeroProbabilityItemsNeverHelp) {
  // Because K must fit strictly within v (Eq. 1), a list ending in a
  // zero-probability z is dominated by K alone (K standalone has zero
  // stretch); the optimal full-space list never contains P = 0 items.
  Rng rng(509);
  for (int trial = 0; trial < 100; ++trial) {
    testing::RandomInstanceOptions opt;
    opt.n = 6;
    opt.v_hi = 25.0;
    Instance inst = testing::random_instance(rng, opt);
    // Zero out two probabilities and renormalize the rest.
    inst.P[1] = 0.0;
    inst.P[4] = 0.0;
    double mass = 0.0;
    for (const double p : inst.P) mass += p;
    for (double& p : inst.P) p /= mass;
    const SkpSolution sol = solve_skp_full(inst);
    for (const ItemId i : sol.F) {
      EXPECT_GT(inst.P[Instance::idx(i)], 0.0);
    }
  }
}

TEST(SkpFull, CandidateSubsetRespected) {
  const Instance inst = testing::small_instance();
  const std::vector<ItemId> cand{1, 2};
  const SkpSolution sol = solve_skp_full(inst, cand);
  for (const ItemId i : sol.F) {
    EXPECT_TRUE(i == 1 || i == 2);
  }
}

TEST(SkpFull, SearchEffortReported) {
  Rng rng(507);
  testing::RandomInstanceOptions opt;
  opt.n = 10;
  const Instance inst = testing::random_instance(rng, opt);
  EXPECT_GT(solve_skp_full(inst).forward_steps, 0u);
}

TEST(SkpFull, RejectsBadMass) {
  const Instance inst = testing::small_instance();
  EXPECT_THROW(solve_skp_full(inst, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace skp
