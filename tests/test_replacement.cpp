#include "cache/replacement.hpp"

#include <gtest/gtest.h>

namespace skp {
namespace {

TEST(Lru, EvictsLeastRecentlyUsed) {
  SlotCache cache(10, 2);
  auto lru = make_lru();
  access_with_policy(cache, *lru, 0);
  access_with_policy(cache, *lru, 1);
  access_with_policy(cache, *lru, 0);  // refresh 0
  access_with_policy(cache, *lru, 2);  // evicts 1
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Lru, HitReturnsTrue) {
  SlotCache cache(10, 2);
  auto lru = make_lru();
  EXPECT_FALSE(access_with_policy(cache, *lru, 0));
  EXPECT_TRUE(access_with_policy(cache, *lru, 0));
}

TEST(Fifo, IgnoresAccessRecency) {
  SlotCache cache(10, 2);
  auto fifo = make_fifo();
  access_with_policy(cache, *fifo, 0);
  access_with_policy(cache, *fifo, 1);
  access_with_policy(cache, *fifo, 0);  // does NOT refresh under FIFO
  access_with_policy(cache, *fifo, 2);  // evicts 0 (first in)
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Lfu, EvictsLeastFrequent) {
  SlotCache cache(10, 2);
  auto lfu = make_lfu();
  access_with_policy(cache, *lfu, 0);
  access_with_policy(cache, *lfu, 0);
  access_with_policy(cache, *lfu, 1);
  access_with_policy(cache, *lfu, 2);  // evicts 1 (freq 1 < freq 2)
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
}

TEST(Lfu, CountsPersistAcrossEviction) {
  SlotCache cache(10, 1);
  auto lfu = make_lfu();
  access_with_policy(cache, *lfu, 0);
  access_with_policy(cache, *lfu, 0);
  access_with_policy(cache, *lfu, 1);  // evicts 0 (only resident)
  // 0 re-enters with its old count 2, so the next miss evicts 1.
  access_with_policy(cache, *lfu, 0);
  EXPECT_TRUE(cache.contains(0));
}

TEST(RandomPolicy, EvictsSomeResident) {
  SlotCache cache(10, 3);
  auto rnd = make_random(7);
  for (ItemId i = 0; i < 3; ++i) access_with_policy(cache, *rnd, i);
  access_with_policy(cache, *rnd, 5);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.contains(5));
}

TEST(RandomPolicy, DeterministicForSeed) {
  SlotCache c1(10, 2), c2(10, 2);
  auto r1 = make_random(42);
  auto r2 = make_random(42);
  for (ItemId i : {0, 1, 2, 3, 4, 0, 2}) {
    access_with_policy(c1, *r1, i);
    access_with_policy(c2, *r2, i);
  }
  for (ItemId i = 0; i < 10; ++i) {
    EXPECT_EQ(c1.contains(i), c2.contains(i));
  }
}

TEST(Policies, NamesAreStable) {
  EXPECT_EQ(make_lru()->name(), "LRU");
  EXPECT_EQ(make_fifo()->name(), "FIFO");
  EXPECT_EQ(make_lfu()->name(), "LFU");
  EXPECT_EQ(make_random(1)->name(), "Random");
}

TEST(Policies, ChooseVictimOnEmptyThrows) {
  SlotCache cache(10, 2);
  auto lru = make_lru();
  EXPECT_THROW(lru->choose_victim(cache), std::invalid_argument);
}

TEST(Policies, CacheNeverExceedsCapacity) {
  SlotCache cache(50, 5);
  auto lru = make_lru();
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    access_with_policy(cache, *lru,
                       static_cast<ItemId>(rng.next_below(50)));
    EXPECT_LE(cache.size(), 5u);
  }
}

}  // namespace
}  // namespace skp
