#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/prefetch_cache.hpp"

namespace skp {
namespace {

TEST(Sweep, ResultsComeBackInInputOrder) {
  ThreadPool pool(4);
  const auto results = sweep_points(
      pool, 100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(Sweep, EmptySweepIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  const auto results = sweep_points(pool, 0, [&](std::size_t) {
    called = true;
    return 0;
  });
  EXPECT_TRUE(results.empty());
  EXPECT_FALSE(called);
}

TEST(Sweep, MoveOnlyResultsSupported) {
  ThreadPool pool(2);
  const auto results = sweep_points(pool, 5, [](std::size_t i) {
    return std::make_unique<std::size_t>(i);
  });
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(*results[i], i);
}

TEST(Sweep, FirstFailureByInputIndexPropagates) {
  ThreadPool pool(3);
  EXPECT_THROW(
      {
        try {
          sweep_points(pool, 10, [](std::size_t i) {
            if (i == 3 || i == 7) {
              throw std::runtime_error("job " + std::to_string(i));
            }
            return i;
          });
        } catch (const std::runtime_error& e) {
          // Futures are joined in index order, so the lowest failing
          // index wins deterministically even when several jobs throw.
          EXPECT_STREQ(e.what(), "job 3");
          throw;
        }
      },
      std::runtime_error);
}

TEST(Sweep, AllJobsJoinedEvenWhenOneThrows) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(sweep_points(pool, 20,
                            [&](std::size_t i) -> int {
                              if (i == 0) throw std::runtime_error("boom");
                              ++completed;
                              return 0;
                            }),
               std::runtime_error);
  // sweep_points returns only after every job has run to completion, so
  // no sibling can be left touching the (destroyed) result slots.
  EXPECT_EQ(completed.load(), 19);
}

TEST(Sweep, SweepConfigsForwardsEachConfig) {
  ThreadPool pool(2);
  const std::vector<int> configs = {3, 1, 4, 1, 5};
  const auto results =
      sweep_configs(pool, configs, [](int c) { return c * 10; });
  ASSERT_EQ(results.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(results[i], configs[i] * 10);
  }
}

// The property the bench drivers rely on: a sweep of independently seeded
// sims is bit-identical for 1 thread, N threads, and a plain serial loop.
TEST(Sweep, SimPointsBitIdenticalAcrossThreadCounts) {
  const auto point_config = [](std::size_t i) {
    PrefetchCacheConfig cfg;
    cfg.source.n_states = 30;
    cfg.source.out_degree_lo = 4;
    cfg.source.out_degree_hi = 8;
    cfg.cache_size = 2 + 4 * i;
    cfg.policy = i % 2 == 0 ? PrefetchPolicy::SKP : PrefetchPolicy::KP;
    cfg.requests = 800;
    cfg.seed = 11;
    return cfg;
  };
  constexpr std::size_t kPoints = 6;

  std::vector<PrefetchCacheResult> serial;
  for (std::size_t i = 0; i < kPoints; ++i) {
    serial.push_back(run_prefetch_cache(point_config(i)));
  }

  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const auto swept = sweep_points(pool, kPoints, [&](std::size_t i) {
      return run_prefetch_cache(point_config(i));
    });
    ASSERT_EQ(swept.size(), serial.size());
    for (std::size_t i = 0; i < kPoints; ++i) {
      EXPECT_EQ(swept[i].metrics.hits, serial[i].metrics.hits)
          << "threads=" << threads << " point=" << i;
      EXPECT_EQ(swept[i].metrics.demand_fetches,
                serial[i].metrics.demand_fetches);
      EXPECT_EQ(swept[i].metrics.prefetch_fetches,
                serial[i].metrics.prefetch_fetches);
      EXPECT_EQ(swept[i].metrics.solver_nodes,
                serial[i].metrics.solver_nodes);
      EXPECT_EQ(swept[i].metrics.mean_access_time(),
                serial[i].metrics.mean_access_time())
          << "threads=" << threads << " point=" << i;
    }
  }
}

}  // namespace
}  // namespace skp
