// Unit tests for bench/bench_util.hpp — the CLI shared by every
// figure-reproduction binary. parse_args exits the process on --help and
// on unrecognized input, so those paths run as death tests.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_util.hpp"

namespace skp::bench {
namespace {

// argv helper: owns mutable copies (argv elements are char*, not const).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    strings_.insert(strings_.begin(), "bench_binary");
    for (auto& s : strings_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> ptrs_;
};

TEST(BenchUtil, DefaultsWithNoArguments) {
  Argv a({});
  const BenchArgs args = parse_args(a.argc(), a.argv());
  EXPECT_FALSE(args.full);
  EXPECT_EQ(args.seed, 1u);
  EXPECT_FALSE(args.csv_dir.has_value());
}

TEST(BenchUtil, FullFlag) {
  Argv a({"--full"});
  EXPECT_TRUE(parse_args(a.argc(), a.argv()).full);
}

TEST(BenchUtil, SeedParsesU64) {
  Argv a({"--seed", "18446744073709551615"});  // max u64 round-trips
  EXPECT_EQ(parse_args(a.argc(), a.argv()).seed,
            18446744073709551615ull);
}

TEST(BenchUtil, CsvCapturesDirectory) {
  Argv a({"--csv", "out/dir"});
  const BenchArgs args = parse_args(a.argc(), a.argv());
  ASSERT_TRUE(args.csv_dir.has_value());
  EXPECT_EQ(*args.csv_dir, "out/dir");
}

TEST(BenchUtil, ThreadsDefaultsToHardware) {
  Argv a({});
  EXPECT_EQ(parse_args(a.argc(), a.argv()).threads, 0u);  // 0 = hw threads
}

TEST(BenchUtil, ThreadsParsesCount) {
  Argv a({"--threads", "7"});
  EXPECT_EQ(parse_args(a.argc(), a.argv()).threads, 7u);
}

TEST(BenchUtil, PlanCacheOnByDefaultAndSwitchable) {
  Argv on({});
  EXPECT_FALSE(parse_args(on.argc(), on.argv()).no_plan_cache);
  Argv off({"--no-plan-cache"});
  EXPECT_TRUE(parse_args(off.argc(), off.argv()).no_plan_cache);
}

TEST(BenchUtil, AllFlagsCombineInAnyOrder) {
  Argv a({"--csv", "plots", "--threads", "3", "--full", "--seed", "42",
          "--no-plan-cache"});
  const BenchArgs args = parse_args(a.argc(), a.argv());
  EXPECT_TRUE(args.full);
  EXPECT_EQ(args.seed, 42u);
  EXPECT_EQ(args.threads, 3u);
  EXPECT_TRUE(args.no_plan_cache);
  ASSERT_TRUE(args.csv_dir.has_value());
  EXPECT_EQ(*args.csv_dir, "plots");
}

TEST(BenchUtilDeathTest, UnknownFlagExits2) {
  Argv a({"--bogus"});
  EXPECT_EXIT(parse_args(a.argc(), a.argv()),
              ::testing::ExitedWithCode(2), "unknown argument: --bogus");
}

TEST(BenchUtilDeathTest, SeedMissingValueIsRejected) {
  // A trailing --seed has no value; parse_args treats it as unknown input
  // rather than silently defaulting.
  Argv a({"--seed"});
  EXPECT_EXIT(parse_args(a.argc(), a.argv()),
              ::testing::ExitedWithCode(2), "unknown argument: --seed");
}

TEST(BenchUtilDeathTest, CsvMissingValueIsRejected) {
  Argv a({"--csv"});
  EXPECT_EXIT(parse_args(a.argc(), a.argv()),
              ::testing::ExitedWithCode(2), "unknown argument: --csv");
}

TEST(BenchUtilDeathTest, ThreadsMissingValueIsRejected) {
  Argv a({"--threads"});
  EXPECT_EXIT(parse_args(a.argc(), a.argv()),
              ::testing::ExitedWithCode(2), "unknown argument: --threads");
}

TEST(BenchUtilDeathTest, HelpPrintsUsageAndExits0) {
  Argv a({"--help"});
  // Usage goes to stdout (not stderr), so match only the exit status.
  EXPECT_EXIT(parse_args(a.argc(), a.argv()),
              ::testing::ExitedWithCode(0), "");
}

TEST(BenchUtilDeathTest, ShortHelpAlsoExits0) {
  Argv a({"-h"});
  EXPECT_EXIT(parse_args(a.argc(), a.argv()),
              ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace skp::bench
