// Shared helpers for the test suite: random instance generation and
// common matchers.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "cache/zobrist.hpp"
#include "core/item.hpp"
#include "util/rng.hpp"
#include "workload/prob_gen.hpp"

namespace skp::testing {

// Reference Zobrist fingerprint of a content set, recomputed from
// scratch — the model the caches' incrementally maintained fingerprints
// are checked against (test_cache_fuzz, test_plan_cache).
inline std::uint64_t model_fingerprint(const std::set<ItemId>& s) {
  std::uint64_t fp = 0;
  for (const ItemId i : s) fp ^= zobrist_item_key(i);
  return fp;
}

struct RandomInstanceOptions {
  std::size_t n = 8;
  double r_lo = 1.0, r_hi = 30.0;
  double v_lo = 1.0, v_hi = 100.0;
  bool integer_times = false;
  ProbMethod method = ProbMethod::Flat;
};

inline Instance random_instance(Rng& rng,
                                const RandomInstanceOptions& opt = {}) {
  Instance inst;
  inst.P = generate_probabilities(opt.n, opt.method, rng);
  inst.r.resize(opt.n);
  for (auto& x : inst.r) {
    x = opt.integer_times
            ? static_cast<double>(rng.uniform_int(
                  static_cast<std::int64_t>(opt.r_lo),
                  static_cast<std::int64_t>(opt.r_hi)))
            : rng.uniform(opt.r_lo, opt.r_hi);
  }
  inst.v = opt.integer_times
               ? static_cast<double>(rng.uniform_int(
                     static_cast<std::int64_t>(opt.v_lo),
                     static_cast<std::int64_t>(opt.v_hi)))
               : rng.uniform(opt.v_lo, opt.v_hi);
  return inst;
}

// A tiny hand-checkable instance used across the core tests:
//   item: 0     1     2     3
//   P   : 0.5   0.3   0.15  0.05
//   r   : 10    20    5     8
//   v   : 12
inline Instance small_instance() {
  Instance inst;
  inst.P = {0.5, 0.3, 0.15, 0.05};
  inst.r = {10.0, 20.0, 5.0, 8.0};
  inst.v = 12.0;
  return inst;
}

}  // namespace skp::testing
