#include "sim/trace_replay.hpp"

#include <gtest/gtest.h>

#include "workload/markov_source.hpp"
#include "workload/request_stream.hpp"

namespace skp {
namespace {

// Records a trace from a Markov source so replay sees learnable structure.
Trace markov_trace(std::size_t n_states, std::size_t length,
                   std::uint64_t seed) {
  Rng build(seed);
  MarkovSourceConfig cfg;
  cfg.n_states = n_states;
  cfg.out_degree_lo = 3;
  cfg.out_degree_hi = 6;
  MarkovSource src(cfg, build);
  src.teleport(0);
  Trace trace(n_states,
              std::vector<double>(src.retrieval_times().begin(),
                                  src.retrieval_times().end()));
  Rng walk = build.split(2);
  for (std::size_t i = 0; i < length; ++i) {
    const std::size_t s = src.current_state();
    const double v = src.viewing_time(s);
    const auto next = static_cast<ItemId>(src.step(walk));
    trace.append(next, v);
  }
  return trace;
}

TEST(TraceReplay, RejectsEmptyTraceAndOracle) {
  Trace empty(4, {1.0, 2.0, 3.0, 4.0});
  EXPECT_THROW(replay_trace(empty, {}), std::invalid_argument);
  const Trace t = markov_trace(10, 50, 1);
  TraceReplayConfig cfg;
  cfg.predictor = PredictorKind::Oracle;
  EXPECT_THROW(replay_trace(t, cfg), std::invalid_argument);
}

TEST(TraceReplay, CountsEveryRequest) {
  const Trace t = markov_trace(15, 500, 2);
  const SimMetrics m = replay_trace(t, {});
  EXPECT_EQ(m.requests, 500u);
}

TEST(TraceReplay, WarmupExcluded) {
  const Trace t = markov_trace(15, 500, 3);
  TraceReplayConfig cfg;
  cfg.warmup = 100;
  EXPECT_EQ(replay_trace(t, cfg).requests, 400u);
}

TEST(TraceReplay, DeterministicReplay) {
  const Trace t = markov_trace(20, 800, 4);
  const SimMetrics a = replay_trace(t, {});
  const SimMetrics b = replay_trace(t, {});
  EXPECT_DOUBLE_EQ(a.mean_access_time(), b.mean_access_time());
  EXPECT_EQ(a.hits, b.hits);
}

TEST(TraceReplay, PrefetchingBeatsDemandOnLearnableTrace) {
  const Trace t = markov_trace(25, 4000, 5);
  TraceReplayConfig skp_cfg;
  skp_cfg.warmup = 500;  // let the predictor learn
  TraceReplayConfig none_cfg = skp_cfg;
  none_cfg.policy = PrefetchPolicy::None;
  const double t_skp = replay_trace(t, skp_cfg).mean_access_time();
  const double t_none = replay_trace(t, none_cfg).mean_access_time();
  EXPECT_LT(t_skp, t_none);
}

TEST(TraceReplay, RoundTripThroughDiskGivesSameResult) {
  const Trace t = markov_trace(12, 600, 6);
  const std::string path = ::testing::TempDir() + "/replay_trace.txt";
  t.save_file(path);
  const Trace loaded = Trace::load_file(path);
  const SimMetrics a = replay_trace(t, {});
  const SimMetrics b = replay_trace(loaded, {});
  EXPECT_DOUBLE_EQ(a.mean_access_time(), b.mean_access_time());
}

TEST(TraceReplay, PredictorKindsAllRun) {
  const Trace t = markov_trace(15, 600, 7);
  for (const auto kind :
       {PredictorKind::Markov1, PredictorKind::Ppm,
        PredictorKind::DependencyWindow}) {
    TraceReplayConfig cfg;
    cfg.predictor = kind;
    const SimMetrics m = replay_trace(t, cfg);
    EXPECT_EQ(m.requests, 600u) << to_string(kind);
  }
}

TEST(TraceReplay, PlanCacheOnOffBitIdentical) {
  // An always-learning predictor bumps the memo generation every request,
  // so the wired plan cache must be all-miss — and exactly a no-op on
  // every counter.
  const Trace t = markov_trace(20, 1200, 9);
  TraceReplayConfig on;
  TraceReplayConfig off = on;
  off.use_plan_cache = false;
  PlanMemoStats stats_on, stats_off;
  const SimMetrics a = replay_trace(t, on, &stats_on);
  const SimMetrics b = replay_trace(t, off, &stats_off);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.demand_fetches, b.demand_fetches);
  EXPECT_EQ(a.prefetch_fetches, b.prefetch_fetches);
  EXPECT_EQ(a.wasted_prefetches, b.wasted_prefetches);
  EXPECT_EQ(a.solver_nodes, b.solver_nodes);
  EXPECT_DOUBLE_EQ(a.mean_access_time(), b.mean_access_time());
  EXPECT_DOUBLE_EQ(a.network_time, b.network_time);
  EXPECT_EQ(stats_on.plans.hits, 0u);
  EXPECT_GT(stats_on.plans.lookups(), 0u);
  // The selection tier is never consulted here: its key would change
  // with every observation.
  EXPECT_EQ(stats_on.selections.lookups(), 0u);
  EXPECT_EQ(stats_off.plans.lookups(), 0u);
}

TEST(TraceReplay, BiggerCacheHelps) {
  const Trace t = markov_trace(25, 3000, 8);
  TraceReplayConfig small;
  small.cache_size = 3;
  TraceReplayConfig large;
  large.cache_size = 20;
  EXPECT_LT(replay_trace(t, large).mean_access_time(),
            replay_trace(t, small).mean_access_time());
}

}  // namespace
}  // namespace skp
