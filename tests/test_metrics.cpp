#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace skp {
namespace {

TEST(SimMetrics, ZeroInitialized) {
  const SimMetrics m;
  EXPECT_EQ(m.requests, 0u);
  EXPECT_DOUBLE_EQ(m.hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_access_time(), 0.0);
  EXPECT_DOUBLE_EQ(m.network_time_per_request(), 0.0);
  EXPECT_DOUBLE_EQ(m.waste_rate(), 0.0);
}

TEST(SimMetrics, DerivedRatios) {
  SimMetrics m;
  m.requests = 10;
  m.hits = 4;
  m.network_time = 55.0;
  m.prefetch_fetches = 8;
  m.wasted_prefetches = 2;
  EXPECT_DOUBLE_EQ(m.hit_rate(), 0.4);
  EXPECT_DOUBLE_EQ(m.network_time_per_request(), 5.5);
  EXPECT_DOUBLE_EQ(m.waste_rate(), 0.25);
}

TEST(SimMetrics, MergeAddsCounters) {
  SimMetrics a, b;
  a.requests = 3;
  a.hits = 1;
  a.network_time = 10.0;
  a.access_time.add(2.0);
  b.requests = 7;
  b.hits = 2;
  b.network_time = 5.0;
  b.access_time.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.requests, 10u);
  EXPECT_EQ(a.hits, 3u);
  EXPECT_DOUBLE_EQ(a.network_time, 15.0);
  EXPECT_EQ(a.access_time.count(), 2u);
  EXPECT_DOUBLE_EQ(a.access_time.mean(), 3.0);
}

TEST(SimMetrics, ToStringMentionsKeyFields) {
  SimMetrics m;
  m.requests = 5;
  const std::string s = m.to_string();
  EXPECT_NE(s.find("requests=5"), std::string::npos);
  EXPECT_NE(s.find("hit_rate"), std::string::npos);
}

}  // namespace
}  // namespace skp
