// Bit-exactness suite for the raw-speed round-3 machinery:
//
//   * util/simd.hpp kernels — every vector ISA the CPU supports must
//     reproduce the scalar reference BIT-identically (the scalar path is
//     the semantics; vectorization may only reorganize exact IEEE
//     elementwise work), including denormal inputs and zero-probability
//     rows;
//   * solve_skp_batch_into — each batched lane must equal
//     solve_skp_sorted_into run alone on that lane;
//   * run_prefetch_cache_batch — each lockstep lane must equal
//     run_prefetch_cache on that lane's config alone, metrics AND
//     plan-cache counters;
//   * pipeline_workers — the pipelined simulator must equal the solo
//     loop on every counter.
//
// Everything here compares doubles through std::bit_cast: equality means
// the same 64 bits, not "close".
#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/plan_cache.hpp"
#include "core/skp_solver.hpp"
#include "sim/prefetch_cache.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "workload/markov_source.hpp"

namespace skp {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

void expect_same_doubles(std::span<const double> a,
                         std::span<const double> b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(bits(a[i]), bits(b[i]))
        << what << " diverges at index " << i << ": " << a[i] << " vs "
        << b[i];
  }
}

// ISAs to exercise: scalar is the reference; every wider ISA the CPU
// supports must match it.
std::vector<simd::Isa> testable_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::Scalar};
  if (simd::detected_isa() >= simd::Isa::Sse2) isas.push_back(simd::Isa::Sse2);
  if (simd::detected_isa() >= simd::Isa::Avx2) isas.push_back(simd::Isa::Avx2);
  return isas;
}

struct KernelInput {
  std::vector<double> P, r, values;
  std::vector<ItemId> ids;
  std::vector<char> present;
};

KernelInput random_input(Rng& rng, std::size_t n, std::size_t m,
                         bool denormals, bool zero_rows) {
  KernelInput in;
  in.P.resize(n);
  in.r.resize(n);
  in.values.resize(n);
  in.present.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    in.P[i] = zero_rows && (rng.next_u64() & 1) ? 0.0
                                                : rng.next_double();
    if (denormals && (rng.next_u64() % 4) == 0) {
      // Scale deep into the subnormal range; exact products with these
      // are where sloppy vector paths (FTZ/DAZ) first diverge.
      in.P[i] *= 1e-310;
    }
    in.r[i] = 1.0 + 29.0 * rng.next_double();
    in.values[i] = rng.next_double() * 100.0;
    in.present[i] = static_cast<char>(rng.next_u64() & 1);
  }
  in.ids.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    in.ids.push_back(static_cast<ItemId>(rng.next_u64() % n));
  }
  return in;
}

TEST(SimdKernels, AllIsasMatchScalarOnRandomInputs) {
  Rng rng(2024);
  for (int rep = 0; rep < 40; ++rep) {
    const std::size_t n = 1 + rng.next_u64() % 257;
    const std::size_t m = rng.next_u64() % (n + 13);
    const KernelInput in = random_input(rng, n, m, /*denormals=*/rep % 2,
                                        /*zero_rows=*/rep % 3 == 0);
    std::vector<double> ref_prod(m), ref_val(m), ref_suf(m + 1);
    simd::gather_products_isa(simd::Isa::Scalar, in.P, in.r, in.ids,
                              ref_prod.data());
    simd::gather_values_isa(simd::Isa::Scalar, in.values, in.ids,
                            ref_val.data());
    simd::suffix_sums_isa(simd::Isa::Scalar, in.P, in.ids, ref_suf.data());
    const double ref_mask =
        simd::masked_time_sum_isa(simd::Isa::Scalar, in.P, in.r, in.present);

    for (simd::Isa isa : testable_isas()) {
      std::vector<double> prod(m), val(m), suf(m + 1);
      simd::gather_products_isa(isa, in.P, in.r, in.ids, prod.data());
      simd::gather_values_isa(isa, in.values, in.ids, val.data());
      simd::suffix_sums_isa(isa, in.P, in.ids, suf.data());
      const double mask = simd::masked_time_sum_isa(isa, in.P, in.r,
                                                    in.present);
      expect_same_doubles(prod, ref_prod, simd::to_string(isa));
      expect_same_doubles(val, ref_val, simd::to_string(isa));
      expect_same_doubles(suf, ref_suf, simd::to_string(isa));
      EXPECT_EQ(bits(mask), bits(ref_mask)) << simd::to_string(isa);
    }
  }
}

TEST(SimdKernels, EmptyAndAllZeroEdgeCases) {
  const std::vector<double> P = {0.0, 0.0, 0.0};
  const std::vector<double> r = {1.0, 2.0, 3.0};
  const std::vector<ItemId> ids = {2, 0, 1};
  const std::vector<char> none(3, 0);
  for (simd::Isa isa : testable_isas()) {
    // Empty id list: nothing written, suffix gets its lone 0 sentinel.
    double sentinel = 42.0;
    simd::suffix_sums_isa(isa, P, {}, &sentinel);
    EXPECT_EQ(bits(sentinel), bits(0.0)) << simd::to_string(isa);
    simd::gather_products_isa(isa, P, r, {}, nullptr);
    simd::gather_values_isa(isa, r, {}, nullptr);
    // All-zero P: every tail sum and the masked total are exactly 0.0.
    std::vector<double> suf(ids.size() + 1, -1.0);
    simd::suffix_sums_isa(isa, P, ids, suf.data());
    for (double s : suf) EXPECT_EQ(bits(s), bits(0.0));
    EXPECT_EQ(bits(simd::masked_time_sum_isa(isa, P, r, none)), bits(0.0));
  }
}

TEST(SimdKernels, ActiveIsaMatchesScalarThroughPublicEntryPoints) {
  Rng rng(7);
  const KernelInput in = random_input(rng, 100, 40, /*denormals=*/true,
                                      /*zero_rows=*/true);
  std::vector<double> got(in.ids.size()), ref(in.ids.size());
  simd::gather_products(in.P, in.r, in.ids, got.data());
  simd::gather_products_isa(simd::Isa::Scalar, in.P, in.r, in.ids,
                            ref.data());
  expect_same_doubles(got, ref, "active gather_products");
  EXPECT_EQ(bits(simd::masked_time_sum(in.P, in.r, in.present)),
            bits(simd::masked_time_sum_isa(simd::Isa::Scalar, in.P, in.r,
                                           in.present)));
}

// ---- solve_skp_batch_into == per-lane solve_skp_sorted_into -------------

void expect_same_solution(const SkpSolution& a, const SkpSolution& b) {
  EXPECT_EQ(a.F, b.F);
  EXPECT_EQ(bits(a.g), bits(b.g));
  EXPECT_EQ(bits(a.stretch), bits(b.stretch));
  EXPECT_EQ(a.forward_steps, b.forward_steps);
  EXPECT_EQ(a.backtracks, b.backtracks);
  EXPECT_EQ(a.bound_prunes, b.bound_prunes);
  EXPECT_EQ(a.node_limit_hit, b.node_limit_hit);
}

TEST(SkpBatchSolve, LanesMatchLoopOverCanonicalRows) {
  // Lanes share (P, r) per state — the batch contract — and differ in v,
  // exactly the lockstep cache-size sweep's shape. Canonical orders come
  // from a real CanonicalOrderTable over a random Markov source.
  Rng build(99);
  MarkovSourceConfig scfg;
  scfg.n_states = 60;
  MarkovSource source(scfg, build);
  CanonicalOrderTable canon(scfg.n_states);

  for (DeltaRule rule : {DeltaRule::ExactComplement, DeltaRule::PaperTail}) {
    SkpOptions opts;
    opts.delta_rule = rule;
    for (std::size_t state = 0; state < 12; ++state) {
      const InstanceView base = source.view_at(state);
      const CanonicalOrderTable::Row row =
          canon.row(state, base, source.successors(state));

      constexpr std::size_t kLanes = 5;
      std::vector<SkpSolution> batch_sol(kLanes), loop_sol(kLanes);
      std::vector<SkpBatchItem> items;
      for (std::size_t k = 0; k < kLanes; ++k) {
        InstanceView inst = base;
        inst.v = base.v * (0.25 + 0.5 * static_cast<double>(k));
        items.push_back({inst, &batch_sol[k]});
      }
      SkpWorkspace batch_ws;
      solve_skp_batch_into(items, row.order, opts, batch_ws);

      for (std::size_t k = 0; k < kLanes; ++k) {
        SkpWorkspace ws;
        solve_skp_sorted_into(items[k].inst, row.order, opts, ws,
                              loop_sol[k]);
        expect_same_solution(batch_sol[k], loop_sol[k]);
      }
    }
  }
}

// ---- run_prefetch_cache_batch == per-config run_prefetch_cache ----------

void expect_same_stats(const PlanCacheStats& a, const PlanCacheStats& b,
                       const char* tier) {
  EXPECT_EQ(a.hits, b.hits) << tier;
  EXPECT_EQ(a.misses, b.misses) << tier;
  EXPECT_EQ(a.inserts, b.inserts) << tier;
  EXPECT_EQ(a.evictions, b.evictions) << tier;
  EXPECT_EQ(a.door_rejects, b.door_rejects) << tier;
}

void expect_same_result(const PrefetchCacheResult& a,
                        const PrefetchCacheResult& b) {
  const SimMetrics& ma = a.metrics;
  const SimMetrics& mb = b.metrics;
  EXPECT_EQ(ma.requests, mb.requests);
  EXPECT_EQ(ma.hits, mb.hits);
  EXPECT_EQ(ma.demand_fetches, mb.demand_fetches);
  EXPECT_EQ(ma.prefetch_fetches, mb.prefetch_fetches);
  EXPECT_EQ(ma.wasted_prefetches, mb.wasted_prefetches);
  EXPECT_EQ(ma.solver_nodes, mb.solver_nodes);
  EXPECT_EQ(bits(ma.network_time), bits(mb.network_time));
  EXPECT_EQ(bits(ma.prefetch_network_time), bits(mb.prefetch_network_time));
  EXPECT_EQ(bits(ma.demand_network_time), bits(mb.demand_network_time));
  EXPECT_EQ(ma.access_time.count(), mb.access_time.count());
  EXPECT_EQ(bits(ma.access_time.mean()), bits(mb.access_time.mean()));
  EXPECT_EQ(bits(ma.access_time.m2()), bits(mb.access_time.m2()));
  EXPECT_EQ(a.over_viewing_time, b.over_viewing_time);
  expect_same_stats(a.plan_cache.plans, b.plan_cache.plans, "plans");
  expect_same_stats(a.plan_cache.selections, b.plan_cache.selections,
                    "selections");
}

PrefetchCacheConfig small_config() {
  PrefetchCacheConfig cfg;
  cfg.source.n_states = 40;
  cfg.requests = 3000;
  cfg.seed = 11;
  return cfg;
}

TEST(BatchSim, CacheSizeSweepLanesMatchSoloRuns) {
  // The fig7 shape: one policy, many cache sizes. All lanes land in one
  // engine-digest group, so this drives the grouped SKP batch path.
  std::vector<PrefetchCacheConfig> configs;
  for (std::size_t size : {2, 5, 9, 14, 20, 33}) {
    PrefetchCacheConfig cfg = small_config();
    cfg.cache_size = size;
    configs.push_back(cfg);
  }
  const std::vector<PrefetchCacheResult> batch =
      run_prefetch_cache_batch(configs);
  ASSERT_EQ(batch.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "cache_size="
                                    << configs[i].cache_size);
    expect_same_result(batch[i], run_prefetch_cache(configs[i]));
  }
}

TEST(BatchSim, MixedPolicyAndArbitrationLanesMatchSoloRuns) {
  // Heterogeneous lanes: different policies (several engine-digest
  // groups), LFU sub-arbitration (plan tier skipped), a PaperTail lane,
  // a plan-cache-off lane (solo fallback inside the batch), a warmup
  // offset, and a min-profit threshold.
  std::vector<PrefetchCacheConfig> configs(6, small_config());
  configs[0].policy = PrefetchPolicy::SKP;
  configs[1].policy = PrefetchPolicy::Perfect;
  configs[2].policy = PrefetchPolicy::KP;
  configs[2].sub = SubArbitration::LFU;
  configs[3].delta_rule = DeltaRule::PaperTail;
  configs[3].cache_size = 7;
  configs[4].use_plan_cache = false;
  configs[5].warmup = 500;
  configs[5].min_profit_threshold = 0.4;
  const std::vector<PrefetchCacheResult> batch =
      run_prefetch_cache_batch(configs);
  ASSERT_EQ(batch.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "lane " << i);
    expect_same_result(batch[i], run_prefetch_cache(configs[i]));
  }
}

TEST(BatchSim, DriftingLanesMatchSoloRuns) {
  std::vector<PrefetchCacheConfig> configs(3, small_config());
  for (PrefetchCacheConfig& cfg : configs) cfg.drift_period = 700;
  configs[1].cache_size = 4;
  configs[2].sub = SubArbitration::DS;
  const std::vector<PrefetchCacheResult> batch =
      run_prefetch_cache_batch(configs);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "lane " << i);
    expect_same_result(batch[i], run_prefetch_cache(configs[i]));
  }
}

TEST(BatchSim, SingleLaneAndEmptyBatch) {
  EXPECT_TRUE(run_prefetch_cache_batch({}).empty());
  const PrefetchCacheConfig cfg = small_config();
  const std::vector<PrefetchCacheConfig> one = {cfg};
  expect_same_result(run_prefetch_cache_batch(one).front(),
                     run_prefetch_cache(cfg));
}

// ---- pipelined execution == solo loop -----------------------------------

TEST(PipelinedSim, MatchesSoloLoopOnEveryCounter) {
  for (std::size_t workers : {1u, 2u, 3u}) {
    for (std::uint64_t seed : {1u, 77u}) {
      PrefetchCacheConfig cfg = small_config();
      cfg.seed = seed;
      cfg.requests = 4000;
      const PrefetchCacheResult solo = run_prefetch_cache(cfg);
      cfg.pipeline_workers = workers;
      SCOPED_TRACE(testing::Message() << "workers=" << workers << " seed="
                                      << seed);
      expect_same_result(run_prefetch_cache(cfg), solo);
    }
  }
}

TEST(PipelinedSim, WorksAcrossCacheSizesAndDeltaRules) {
  for (std::size_t size : {1, 6, 25}) {
    for (DeltaRule rule :
         {DeltaRule::ExactComplement, DeltaRule::PaperTail}) {
      PrefetchCacheConfig cfg = small_config();
      cfg.cache_size = size;
      cfg.delta_rule = rule;
      const PrefetchCacheResult solo = run_prefetch_cache(cfg);
      cfg.pipeline_workers = 2;
      SCOPED_TRACE(testing::Message() << "size=" << size);
      expect_same_result(run_prefetch_cache(cfg), solo);
    }
  }
}

}  // namespace
}  // namespace skp
