// Bit-identity and fuzz coverage for the arena substrate (util/arena.hpp)
// and the structures rebuilt on top of it.
//
// The refactor's contract is that moving the LZ78/PPM tries and the
// PlanCache onto index-based arena storage changed WHERE the bytes live,
// never WHAT any call returns. These suites pin that directly: map-based
// reference implementations of the exact published algorithms — the
// shape the pointer-chasing predecessors had — are run in lockstep with
// the arena versions and must agree to the last bit on every prediction
// and every lookup. The fuzz passes run under the sanitize CI job, so
// index-recycling bugs (stale Edge references across a pool growth, probe
// runs past a table resize) surface as asan/ubsan reports, not silent
// corruption.
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "predict/lz78_predictor.hpp"
#include "predict/ppm_predictor.hpp"
#include "core/plan_cache.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace skp {
namespace {

TEST(PoolArena, IndexOrderIsAllocationOrder) {
  PoolArena<int> pool;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(pool.alloc(i * 7), static_cast<std::uint32_t>(i));
  }
  for (std::uint32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(pool[i], static_cast<int>(i) * 7);
  }
  const std::size_t footprint = pool.footprint_bytes();
  pool.clear();
  EXPECT_TRUE(pool.empty());
  // clear() recycles capacity for the next session phase.
  EXPECT_EQ(pool.footprint_bytes(), footprint);
}

TEST(Key64Map, MatchesUnorderedMapUnderFuzz) {
  Rng rng(2024);
  Key64Map map;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  std::vector<std::uint64_t> keys;  // insertion order, for lookups

  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20'000; ++i) {
      // Small-ish key space so collisions and repeat-lookups both occur;
      // keys must be nonzero (Key64Map's empty marker).
      const std::uint64_t key = (rng.next_u64() % 60'000) + 1;
      auto [it, fresh] = ref.try_emplace(key,
                                         static_cast<std::uint32_t>(i));
      if (fresh) {
        map.insert(key, it->second);
        keys.push_back(key);
      }
      // Lookup of a key that may or may not exist.
      const std::uint64_t probe_key = (rng.next_u64() % 90'000) + 1;
      const auto ref_it = ref.find(probe_key);
      const std::uint32_t expected =
          ref_it == ref.end() ? Key64Map::kNotFound : ref_it->second;
      EXPECT_EQ(map.find(probe_key), expected);
    }
    EXPECT_EQ(map.size(), ref.size());
    for (const std::uint64_t key : keys) {
      EXPECT_EQ(map.find(key), ref.at(key));
    }
    map.clear();
    ref.clear();
    keys.clear();
    EXPECT_EQ(map.find(1), Key64Map::kNotFound);
  }
}

TEST(StablePool, AddressesSurviveLaterAllocations) {
  StablePool<std::uint32_t> pool;
  Rng rng(7);
  std::vector<std::pair<std::uint32_t*, std::size_t>> blocks;
  std::size_t stamp = 1;
  for (int i = 0; i < 2'000; ++i) {
    // Sizes straddle the chunk-growth boundary, including oversized
    // blocks that force a dedicated chunk.
    const std::size_t n = 1 + rng.next_u64() % 300;
    std::uint32_t* block = pool.alloc(n);
    ASSERT_NE(block, nullptr);
    for (std::size_t j = 0; j < n; ++j) {
      block[j] = static_cast<std::uint32_t>(stamp + j);
    }
    blocks.emplace_back(block, n);
    stamp += n;
  }
  EXPECT_EQ(pool.alloc(0), nullptr);
  // Every block written earlier must still hold its pattern — no chunk
  // was moved or reused by later allocations.
  stamp = 1;
  for (const auto& [block, n] : blocks) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(block[j], static_cast<std::uint32_t>(stamp + j));
    }
    stamp += n;
  }
}

// ---------------------------------------------------------------------
// Map-based LZ78 reference: the algorithm the arena trie replaced, with
// one unordered_map of (child, count) per node. Same phrase rule, same
// escape arithmetic, same normalization order.
class Lz78Reference {
 public:
  explicit Lz78Reference(std::size_t n) : n_(n), nodes_(1) {
    marginal_.assign(n, 0);
  }

  void observe(ItemId item) {
    Node& cur = nodes_[current_];
    ++cur.total;
    ++marginal_[static_cast<std::size_t>(item)];
    ++total_;
    if (auto it = cur.edges.find(item); it != cur.edges.end()) {
      ++it->second.count;
      current_ = it->second.child;
      return;
    }
    const std::size_t id = nodes_.size();
    nodes_.emplace_back();
    nodes_[current_].edges.emplace(item, EdgeRef{id, 1});
    current_ = 0;
  }

  void predict_into(std::vector<double>& p) const {
    p.assign(n_, 0.0);
    if (total_ == 0) {
      std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n_));
      return;
    }
    std::vector<double> base(n_);
    const double denom =
        static_cast<double>(total_) + static_cast<double>(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      base[i] = (static_cast<double>(marginal_[i]) + 1.0) / denom;
    }
    const Node& cur = nodes_[current_];
    if (cur.total == 0) {
      p.assign(base.begin(), base.end());
      return;
    }
    const double distinct = static_cast<double>(cur.edges.size());
    const double esc =
        distinct / (static_cast<double>(cur.total) + distinct);
    for (const auto& [sym, edge] : cur.edges) {
      p[static_cast<std::size_t>(sym)] =
          (1.0 - esc) * static_cast<double>(edge.count) /
          static_cast<double>(cur.total);
    }
    for (std::size_t i = 0; i < n_; ++i) p[i] += esc * base[i];
    double sum = 0.0;
    for (const double x : p) sum += x;
    for (double& x : p) x /= sum;
  }

 private:
  struct EdgeRef {
    std::size_t child;
    std::uint64_t count;
  };
  struct Node {
    std::unordered_map<ItemId, EdgeRef> edges;
    std::uint64_t total = 0;
  };
  std::size_t n_;
  std::vector<Node> nodes_;
  std::size_t current_ = 0;
  std::vector<std::uint64_t> marginal_;
  std::uint64_t total_ = 0;
};

TEST(Lz78Arena, BitIdenticalToMapReference) {
  constexpr std::size_t kN = 40;
  Lz78Predictor arena(kN);
  Lz78Reference ref(kN);
  Rng rng(99);
  std::vector<double> pa, pr;
  // A sticky random walk so contexts actually recur and the tree deepens.
  ItemId prev = 0;
  for (int step = 0; step < 8'000; ++step) {
    const ItemId item =
        (rng.next_u64() % 4 != 0)
            ? static_cast<ItemId>((static_cast<std::uint64_t>(prev) +
                                   1 + rng.next_u64() % 3) % kN)
            : static_cast<ItemId>(rng.next_u64() % kN);
    arena.observe(item);
    ref.observe(item);
    prev = item;
    if (step % 37 == 0) {
      arena.predict_into(pa);
      ref.predict_into(pr);
      ASSERT_EQ(pa.size(), pr.size());
      for (std::size_t i = 0; i < pa.size(); ++i) {
        // Exact — not near: the arena trie must preserve the arithmetic
        // to the last bit.
        ASSERT_EQ(pa[i], pr[i]) << "step " << step << " item " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Map-based PPM reference: per order, context key -> (total, successor
// counts). The blend touches each non-excluded symbol exactly once per
// order with order-independent integer sums, so iteration order (map vs
// arena edge list) cannot change the doubles.
class PpmReference {
 public:
  PpmReference(std::size_t n, std::size_t order)
      : n_(n), order_(order), tables_(order) {
    marginal_.assign(n, 0);
  }

  void observe(ItemId item) {
    for (std::size_t len = 1; len <= std::min(order_, history_.size());
         ++len) {
      Ctx& ctx = tables_[len - 1][key_of(len)];
      ++ctx.total;
      ++ctx.counts[item];
    }
    ++marginal_[static_cast<std::size_t>(item)];
    ++total_;
    history_.push_back(item);
    if (history_.size() > order_) history_.pop_front();
  }

  void predict_into(std::vector<double>& p) const {
    p.assign(n_, 0.0);
    double remaining = 1.0;
    std::vector<char> excluded(n_, 0);
    for (std::size_t len = std::min(order_, history_.size()); len >= 1;
         --len) {
      const auto it = tables_[len - 1].find(key_of(len));
      if (it == tables_[len - 1].end() || it->second.total == 0) continue;
      const Ctx& ctx = it->second;
      std::uint64_t total = 0, distinct = 0;
      for (const auto& [sym, count] : ctx.counts) {
        if (excluded[static_cast<std::size_t>(sym)]) continue;
        total += count;
        ++distinct;
      }
      if (total == 0) continue;
      const double denom = static_cast<double>(total + distinct);
      for (const auto& [sym, count] : ctx.counts) {
        const auto s = static_cast<std::size_t>(sym);
        if (excluded[s]) continue;
        p[s] += remaining * static_cast<double>(count) / denom;
        excluded[s] = 1;
      }
      remaining *= static_cast<double>(distinct) / denom;
    }
    std::uint64_t marg_total = 0;
    std::size_t open = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (!excluded[i]) {
        marg_total += marginal_[i];
        ++open;
      }
    }
    if (open > 0) {
      for (std::size_t i = 0; i < n_; ++i) {
        if (excluded[i]) continue;
        const double base =
            marg_total > 0 ? static_cast<double>(marginal_[i]) /
                                 static_cast<double>(marg_total)
                           : 1.0 / static_cast<double>(open);
        const double uniform = 1.0 / static_cast<double>(open);
        p[i] += remaining * (0.9 * base + 0.1 * uniform);
      }
    }
    double sum = 0.0;
    for (const double x : p) sum += x;
    if (sum <= 0.0) {
      std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(n_));
      return;
    }
    for (double& x : p) x /= sum;
  }

 private:
  struct Ctx {
    std::uint64_t total = 0;
    std::map<ItemId, std::uint64_t> counts;
  };
  std::uint64_t key_of(std::size_t len) const {
    std::uint64_t key = 1;
    const std::uint64_t base = static_cast<std::uint64_t>(n_) + 1;
    for (std::size_t i = history_.size() - len; i < history_.size(); ++i) {
      key = key * base + static_cast<std::uint64_t>(history_[i]) + 1;
    }
    return key;
  }
  std::size_t n_;
  std::size_t order_;
  std::vector<std::unordered_map<std::uint64_t, Ctx>> tables_;
  std::vector<std::uint64_t> marginal_;
  std::uint64_t total_ = 0;
  std::deque<ItemId> history_;
};

TEST(PpmArena, BitIdenticalToMapReference) {
  constexpr std::size_t kN = 30;
  PpmPredictor arena(kN, 3);
  PpmReference ref(kN, 3);
  Rng rng(4242);
  std::vector<double> pa, pr;
  ItemId prev = 0;
  for (int step = 0; step < 6'000; ++step) {
    const ItemId item =
        (rng.next_u64() % 5 != 0)
            ? static_cast<ItemId>((static_cast<std::uint64_t>(prev) +
                                   1 + rng.next_u64() % 4) % kN)
            : static_cast<ItemId>(rng.next_u64() % kN);
    arena.observe(item);
    ref.observe(item);
    prev = item;
    if (step % 41 == 0) {
      arena.predict_into(pa);
      ref.predict_into(pr);
      ASSERT_EQ(pa.size(), pr.size());
      for (std::size_t i = 0; i < pa.size(); ++i) {
        ASSERT_EQ(pa[i], pr[i]) << "step " << step << " item " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------
// LRU-map PlanCache reference: std::list + unordered_map, the textbook
// shape the index-linked pool replaced. Fuzzes find/insert (plus
// generation bumps) and requires identical hit/miss answers, payloads,
// eviction behavior, and stats — on a capacity small enough to keep
// evictions constant and a key space small enough to keep hits frequent.
class PlanCacheReference {
 public:
  explicit PlanCacheReference(std::size_t capacity) : capacity_(capacity) {}

  const double* find(std::uint64_t state, std::uint64_t fp) {
    const Key key{state, fp, generation_};
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->payload;
  }

  void insert(std::uint64_t state, std::uint64_t fp, double payload) {
    const Key key{state, fp, generation_};
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second->payload = payload;
      ++stats_.inserts;
      return;
    }
    if (lru_.size() >= capacity_) {
      map_.erase(lru_.back().key);
      lru_.pop_back();
      ++stats_.evictions;
    }
    lru_.push_front(Entry{key, payload});
    map_[key] = lru_.begin();
    ++stats_.inserts;
  }

  void bump_generation() { ++generation_; }
  const PlanCacheStats& stats() const { return stats_; }

 private:
  struct Key {
    std::uint64_t state, fp, generation;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t x = k.state * 0x9e3779b97f4a7c15ULL ^
                        k.fp * 0xbf58476d1ce4e5b9ULL ^
                        k.generation * 0x94d049bb133111ebULL;
      x ^= x >> 31;
      return static_cast<std::size_t>(x);
    }
  };
  struct Entry {
    Key key;
    double payload;
  };
  std::size_t capacity_;
  std::uint64_t generation_ = 0;
  std::list<Entry> lru_;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  PlanCacheStats stats_;
};

TEST(PlanCacheArena, MatchesLruMapReferenceUnderFuzz) {
  constexpr std::size_t kCapacity = 64;
  PlanCache cache(/*config_digest=*/0xabcdef, kCapacity);
  PlanCacheReference ref(kCapacity);
  Rng rng(31337);

  for (int op = 0; op < 60'000; ++op) {
    const std::uint64_t state = rng.next_u64() % 150;
    const std::uint64_t fp = rng.next_u64() % 4;
    const std::uint64_t roll = rng.next_u64() % 100;
    if (roll < 55) {
      const StoredPlan* got = cache.find(state, fp);
      const double* want = ref.find(state, fp);
      ASSERT_EQ(got != nullptr, want != nullptr) << "op " << op;
      if (got != nullptr) {
        ASSERT_EQ(got->predicted_g, *want) << "op " << op;
      }
    } else if (roll < 98) {
      const double payload = static_cast<double>(rng.next_u64() % 1'000);
      StoredPlan* slot = cache.insert(state, fp);
      ASSERT_NE(slot, nullptr);  // no doorkeeper, no freeze
      slot->predicted_g = payload;
      ref.insert(state, fp, payload);
    } else {
      cache.bump_generation();
      ref.bump_generation();
    }
    ASSERT_LE(cache.size(), kCapacity);
  }
  EXPECT_EQ(cache.stats().hits, ref.stats().hits);
  EXPECT_EQ(cache.stats().misses, ref.stats().misses);
  EXPECT_EQ(cache.stats().inserts, ref.stats().inserts);
  EXPECT_EQ(cache.stats().evictions, ref.stats().evictions);
}

// Lazy probe-table growth must be observation-free: a cache that grew
// through every doubling returns exactly what a fresh cache with the
// same final contents does.
TEST(PlanCacheArena, LazyTableGrowthIsInvisible) {
  PlanCache grown(1, /*capacity=*/4096);
  for (std::uint64_t k = 0; k < 3'000; ++k) {
    grown.insert(k, k * 17)->predicted_g = static_cast<double>(k);
  }
  for (std::uint64_t k = 0; k < 3'000; ++k) {
    const StoredPlan* plan = grown.find(k, k * 17);
    ASSERT_NE(plan, nullptr) << "key " << k;
    ASSERT_EQ(plan->predicted_g, static_cast<double>(k));
  }
  EXPECT_EQ(grown.stats().hits, 3'000u);
  EXPECT_EQ(grown.stats().misses, 0u);
}

}  // namespace
}  // namespace skp
