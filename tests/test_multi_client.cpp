#include "sim/multi_client.hpp"

#include <gtest/gtest.h>

#include "sim/prefetch_cache.hpp"

namespace skp {
namespace {

MultiClientConfig quick(std::size_t clients, double threshold = 0.0) {
  MultiClientConfig cfg;
  cfg.n_clients = clients;
  cfg.source.n_states = 25;
  cfg.source.out_degree_lo = 4;
  cfg.source.out_degree_hi = 7;
  cfg.cache_size = 6;
  cfg.engine.policy = PrefetchPolicy::SKP;
  cfg.engine.min_profit_threshold = threshold;
  cfg.requests_per_client = 400;
  cfg.seed = 13;
  return cfg;
}

TEST(MultiClient, Validation) {
  auto cfg = quick(1);
  cfg.n_clients = 0;
  EXPECT_THROW(run_multi_client(cfg), std::invalid_argument);
  cfg = quick(1);
  cfg.link_speedup = 0.0;
  EXPECT_THROW(run_multi_client(cfg), std::invalid_argument);
  cfg = quick(1);
  cfg.cache_size = 0;
  EXPECT_THROW(run_multi_client(cfg), std::invalid_argument);
}

TEST(MultiClient, EveryClientServesItsQuota) {
  const auto res = run_multi_client(quick(3));
  ASSERT_EQ(res.per_client.size(), 3u);
  for (const auto& m : res.per_client) {
    EXPECT_EQ(m.requests, 400u);
  }
  EXPECT_EQ(res.aggregate.requests, 1200u);
}

TEST(MultiClient, DeterministicInSeed) {
  const auto a = run_multi_client(quick(2));
  const auto b = run_multi_client(quick(2));
  EXPECT_DOUBLE_EQ(a.aggregate.mean_access_time(),
                   b.aggregate.mean_access_time());
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(MultiClient, LinkUtilizationBounded) {
  const auto res = run_multi_client(quick(4));
  EXPECT_GE(res.link_utilization(), 0.0);
  EXPECT_LE(res.link_utilization(), 1.0 + 1e-9);
  EXPECT_GT(res.makespan, 0.0);
}

TEST(MultiClient, ContentionHurtsAtFixedLinkSpeed) {
  // More clients on the SAME link (no speedup) must not make the average
  // access time better.
  auto one = quick(1);
  auto four = quick(4);
  const double t1 = run_multi_client(one).aggregate.mean_access_time();
  const double t4 = run_multi_client(four).aggregate.mean_access_time();
  EXPECT_GE(t4, t1 * 0.9);
}

TEST(MultiClient, ThrottlingHelpsUnderHeavyContention) {
  // At 6 clients on an unscaled link, disabling speculation must not be
  // worse than unbounded speculation by any large margin — and typically
  // strictly beats it.
  auto eager = quick(6, 0.0);
  auto off = quick(6, 1e9);
  const auto res_eager = run_multi_client(eager);
  const auto res_off = run_multi_client(off);
  EXPECT_EQ(res_off.aggregate.prefetch_fetches, 0u);
  EXPECT_LE(res_off.aggregate.mean_access_time(),
            res_eager.aggregate.mean_access_time() * 1.5);
}

TEST(MultiClient, SingleClientMatchesAnalyticOrdering) {
  // With one client the system degenerates to the Fig.-7 setting: SKP
  // must beat no-prefetch.
  auto skp_cfg = quick(1);
  auto none_cfg = quick(1);
  none_cfg.engine.policy = PrefetchPolicy::None;
  EXPECT_LT(run_multi_client(skp_cfg).aggregate.mean_access_time(),
            run_multi_client(none_cfg).aggregate.mean_access_time());
}

TEST(MultiClient, FasterLinkNeverHurts) {
  auto slow = quick(4);
  auto fast = quick(4);
  fast.link_speedup = 4.0;
  EXPECT_LE(run_multi_client(fast).aggregate.mean_access_time(),
            run_multi_client(slow).aggregate.mean_access_time() + 1e-9);
}

TEST(MultiClient, PlanCacheOnOffBitIdentical) {
  auto on = quick(3);
  on.requests_per_client = 800;
  auto off = on;
  off.use_plan_cache = false;
  const auto a = run_multi_client(on);
  const auto b = run_multi_client(off);
  EXPECT_EQ(a.aggregate.hits, b.aggregate.hits);
  EXPECT_EQ(a.aggregate.demand_fetches, b.aggregate.demand_fetches);
  EXPECT_EQ(a.aggregate.prefetch_fetches, b.aggregate.prefetch_fetches);
  EXPECT_EQ(a.aggregate.solver_nodes, b.aggregate.solver_nodes);
  EXPECT_DOUBLE_EQ(a.aggregate.mean_access_time(),
                   b.aggregate.mean_access_time());
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.link_busy_time, b.link_busy_time);
  // Oracle rows + default sub-arbitration: recurring states must replay
  // stored solver selections (and some full plans).
  EXPECT_GT(a.plan_cache.selections.hits, 0u);
  EXPECT_GT(a.plan_cache.plans.hits, 0u);
  EXPECT_EQ(b.plan_cache.plans.lookups(), 0u);
  EXPECT_EQ(b.plan_cache.selections.lookups(), 0u);
}

}  // namespace
}  // namespace skp
