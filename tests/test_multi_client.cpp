#include "sim/multi_client.hpp"

#include <gtest/gtest.h>

#include "sim/prefetch_cache.hpp"

namespace skp {
namespace {

MultiClientConfig quick(std::size_t clients, double threshold = 0.0) {
  MultiClientConfig cfg;
  cfg.n_clients = clients;
  cfg.source.n_states = 25;
  cfg.source.out_degree_lo = 4;
  cfg.source.out_degree_hi = 7;
  cfg.cache_size = 6;
  cfg.engine.policy = PrefetchPolicy::SKP;
  cfg.engine.min_profit_threshold = threshold;
  cfg.requests_per_client = 400;
  cfg.seed = 13;
  return cfg;
}

TEST(MultiClient, Validation) {
  auto cfg = quick(1);
  cfg.n_clients = 0;
  EXPECT_THROW(run_multi_client(cfg), std::invalid_argument);
  cfg = quick(1);
  cfg.link_speedup = 0.0;
  EXPECT_THROW(run_multi_client(cfg), std::invalid_argument);
  cfg = quick(1);
  cfg.cache_size = 0;
  EXPECT_THROW(run_multi_client(cfg), std::invalid_argument);
}

TEST(MultiClient, EveryClientServesItsQuota) {
  const auto res = run_multi_client(quick(3));
  ASSERT_EQ(res.per_client.size(), 3u);
  for (const auto& m : res.per_client) {
    EXPECT_EQ(m.requests, 400u);
  }
  EXPECT_EQ(res.aggregate.requests, 1200u);
}

TEST(MultiClient, DeterministicInSeed) {
  const auto a = run_multi_client(quick(2));
  const auto b = run_multi_client(quick(2));
  EXPECT_DOUBLE_EQ(a.aggregate.mean_access_time(),
                   b.aggregate.mean_access_time());
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(MultiClient, LinkUtilizationBounded) {
  const auto res = run_multi_client(quick(4));
  EXPECT_GE(res.link_utilization(), 0.0);
  EXPECT_LE(res.link_utilization(), 1.0 + 1e-9);
  EXPECT_GT(res.makespan, 0.0);
}

TEST(MultiClient, ContentionHurtsAtFixedLinkSpeed) {
  // More clients on the SAME link (no speedup) must not make the average
  // access time better.
  auto one = quick(1);
  auto four = quick(4);
  const double t1 = run_multi_client(one).aggregate.mean_access_time();
  const double t4 = run_multi_client(four).aggregate.mean_access_time();
  EXPECT_GE(t4, t1 * 0.9);
}

TEST(MultiClient, ThrottlingHelpsUnderHeavyContention) {
  // At 6 clients on an unscaled link, disabling speculation must not be
  // worse than unbounded speculation by any large margin — and typically
  // strictly beats it.
  auto eager = quick(6, 0.0);
  auto off = quick(6, 1e9);
  const auto res_eager = run_multi_client(eager);
  const auto res_off = run_multi_client(off);
  EXPECT_EQ(res_off.aggregate.prefetch_fetches, 0u);
  EXPECT_LE(res_off.aggregate.mean_access_time(),
            res_eager.aggregate.mean_access_time() * 1.5);
}

TEST(MultiClient, SingleClientMatchesAnalyticOrdering) {
  // With one client the system degenerates to the Fig.-7 setting: SKP
  // must beat no-prefetch.
  auto skp_cfg = quick(1);
  auto none_cfg = quick(1);
  none_cfg.engine.policy = PrefetchPolicy::None;
  EXPECT_LT(run_multi_client(skp_cfg).aggregate.mean_access_time(),
            run_multi_client(none_cfg).aggregate.mean_access_time());
}

TEST(MultiClient, FasterLinkNeverHurts) {
  auto slow = quick(4);
  auto fast = quick(4);
  fast.link_speedup = 4.0;
  EXPECT_LE(run_multi_client(fast).aggregate.mean_access_time(),
            run_multi_client(slow).aggregate.mean_access_time() + 1e-9);
}

TEST(MultiClient, SeedOverrideNeverShiftsSiblingClients) {
  // With an override vector in play, reseeding the FIRST client must
  // leave every sibling's trajectory untouched (each client's streams
  // are private — the earlier shared-sequential scheme shifted every
  // later chain when one client stopped consuming it).
  auto cfg = quick(3);
  cfg.overrides.resize(3);
  const auto base = run_multi_client(cfg);
  cfg.overrides[0].seed = 42;
  const auto reseeded = run_multi_client(cfg);
  ASSERT_EQ(reseeded.per_client.size(), 3u);
  EXPECT_NE(base.per_client[0].network_time,
            reseeded.per_client[0].network_time);
  EXPECT_EQ(base.per_client[1].solver_nodes,
            reseeded.per_client[1].solver_nodes);
  EXPECT_EQ(base.per_client[1].network_time,
            reseeded.per_client[1].network_time);
  EXPECT_EQ(base.per_client[2].solver_nodes,
            reseeded.per_client[2].solver_nodes);
  EXPECT_EQ(base.per_client[2].network_time,
            reseeded.per_client[2].network_time);
}

TEST(MultiClient, PlanMemoStatsSumAcrossAsymmetricClients) {
  // Two clients under deliberately skewed loads: a 10-state chain whose
  // (state, cache) pairs recur constantly versus a 120-state chain that
  // mostly misses. Per-client seed overrides give each client private
  // streams, so the same client config run SOLO must reproduce exactly
  // the per-client memoization counters of the JOINT run (cache
  // evolution depends on the request sequence, never on link timing).
  // The merged stats must then be the counter SUMS — and the merged hit
  // rate the recomputation from summed hits/misses, which under skew is
  // far from the mean of the per-client rates.
  auto client = [](std::size_t n_states, std::uint64_t seed) {
    MultiClientConfig::ClientOverride ov;
    MarkovSourceConfig src;
    src.n_states = n_states;
    src.out_degree_lo = 3;
    src.out_degree_hi = 6;
    ov.source = src;
    ov.seed = seed;
    return ov;
  };
  auto solo = [&](const MultiClientConfig::ClientOverride& ov) {
    MultiClientConfig cfg;
    cfg.n_clients = 1;
    cfg.cache_size = 5;
    cfg.requests_per_client = 800;
    cfg.seed = 4;
    cfg.overrides = {ov};
    return run_multi_client(cfg);
  };
  const auto hot = client(10, 101);
  const auto cold = client(120, 202);
  const MultiClientResult a = solo(hot);
  const MultiClientResult b = solo(cold);

  MultiClientConfig joint_cfg;
  joint_cfg.n_clients = 2;
  joint_cfg.cache_size = 5;
  joint_cfg.requests_per_client = 800;
  joint_cfg.seed = 4;
  joint_cfg.overrides = {hot, cold};
  const MultiClientResult joint = run_multi_client(joint_cfg);

  for (const auto tier : {&PlanMemoStats::plans,
                          &PlanMemoStats::selections}) {
    const PlanCacheStats& sa = a.plan_cache.*tier;
    const PlanCacheStats& sb = b.plan_cache.*tier;
    const PlanCacheStats& sj = joint.plan_cache.*tier;
    EXPECT_EQ(sj.hits, sa.hits + sb.hits);
    EXPECT_EQ(sj.misses, sa.misses + sb.misses);
    EXPECT_EQ(sj.inserts, sa.inserts + sb.inserts);
    EXPECT_EQ(sj.evictions, sa.evictions + sb.evictions);
    // The merged rate is recomputed from the summed counters...
    EXPECT_DOUBLE_EQ(sj.hit_rate(),
                     static_cast<double>(sa.hits + sb.hits) /
                         static_cast<double>(sa.lookups() + sb.lookups()));
  }
  // ...and the loads are genuinely skewed: averaging the per-client
  // selection-tier rates would misreport the merged rate.
  const double mean_of_rates = (a.plan_cache.selections.hit_rate() +
                                b.plan_cache.selections.hit_rate()) /
                               2.0;
  EXPECT_GT(std::abs(joint.plan_cache.selections.hit_rate() -
                     mean_of_rates),
            0.02);
}

TEST(MultiClient, PlanCacheOnOffBitIdentical) {
  auto on = quick(3);
  on.requests_per_client = 800;
  auto off = on;
  off.use_plan_cache = false;
  const auto a = run_multi_client(on);
  const auto b = run_multi_client(off);
  EXPECT_EQ(a.aggregate.hits, b.aggregate.hits);
  EXPECT_EQ(a.aggregate.demand_fetches, b.aggregate.demand_fetches);
  EXPECT_EQ(a.aggregate.prefetch_fetches, b.aggregate.prefetch_fetches);
  EXPECT_EQ(a.aggregate.solver_nodes, b.aggregate.solver_nodes);
  EXPECT_DOUBLE_EQ(a.aggregate.mean_access_time(),
                   b.aggregate.mean_access_time());
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.link_busy_time, b.link_busy_time);
  // Oracle rows + default sub-arbitration: recurring states must replay
  // stored solver selections (and some full plans).
  EXPECT_GT(a.plan_cache.selections.hits, 0u);
  EXPECT_GT(a.plan_cache.plans.hits, 0u);
  EXPECT_EQ(b.plan_cache.plans.lookups(), 0u);
  EXPECT_EQ(b.plan_cache.selections.lookups(), 0u);
}

// ---- Hostile worlds -----------------------------------------------------

TEST(MultiClientHostile, ChurnStillServesEveryQuota) {
  auto cfg = quick(3);
  cfg.churn_period = 300.0;
  cfg.churn_downtime = 50.0;
  const auto res = run_multi_client(cfg);
  EXPECT_GT(res.churn_events, 0u);
  ASSERT_EQ(res.per_client.size(), 3u);
  for (const auto& m : res.per_client) EXPECT_EQ(m.requests, 400u);
  EXPECT_EQ(res.aggregate.requests, 1200u);
  // Walking away from a warm cache strands prefetched-but-unviewed
  // residents: the flush must charge them as wasted.
  const auto calm = run_multi_client(quick(3));
  EXPECT_GT(res.aggregate.wasted_prefetches,
            calm.aggregate.wasted_prefetches);
}

TEST(MultiClientHostile, ChurningOneClientNeverShiftsSiblingDecisions) {
  // Churn client 0 via an override: the siblings' private streams and
  // chain state survive, so every timing-INDEPENDENT counter of clients
  // 1 and 2 must be bit-identical to the calm run. (hits and access
  // times legitimately move — the churning client changes when the
  // shared link is busy.)
  auto cfg = quick(3);
  cfg.overrides.resize(3);
  const auto calm = run_multi_client(cfg);
  cfg.overrides[0].churn_period = 250.0;
  cfg.overrides[0].churn_downtime = 40.0;
  const auto churned = run_multi_client(cfg);
  EXPECT_GT(churned.churn_events, 0u);
  ASSERT_EQ(churned.per_client.size(), 3u);
  for (std::size_t c = 1; c < 3; ++c) {
    const auto& a = calm.per_client[c];
    const auto& b = churned.per_client[c];
    EXPECT_EQ(a.requests, b.requests) << c;
    EXPECT_EQ(a.demand_fetches, b.demand_fetches) << c;
    EXPECT_EQ(a.prefetch_fetches, b.prefetch_fetches) << c;
    EXPECT_EQ(a.wasted_prefetches, b.wasted_prefetches) << c;
    EXPECT_EQ(a.solver_nodes, b.solver_nodes) << c;
    EXPECT_DOUBLE_EQ(a.network_time, b.network_time) << c;
  }
  // The churned client itself must cold-restart visibly.
  EXPECT_NE(calm.per_client[0].demand_fetches,
            churned.per_client[0].demand_fetches);
}

TEST(MultiClientHostile, ChurnPlanCacheOnOffBitIdentical) {
  // Rejoin invalidates the plan memo by generation bump; the memo must
  // stay a pure cache through every flush.
  auto on = quick(3);
  on.churn_period = 300.0;
  on.churn_downtime = 50.0;
  auto off = on;
  off.use_plan_cache = false;
  const auto a = run_multi_client(on);
  const auto b = run_multi_client(off);
  EXPECT_EQ(a.churn_events, b.churn_events);
  EXPECT_EQ(a.aggregate.hits, b.aggregate.hits);
  EXPECT_EQ(a.aggregate.demand_fetches, b.aggregate.demand_fetches);
  EXPECT_EQ(a.aggregate.prefetch_fetches, b.aggregate.prefetch_fetches);
  EXPECT_EQ(a.aggregate.wasted_prefetches, b.aggregate.wasted_prefetches);
  EXPECT_EQ(a.aggregate.solver_nodes, b.aggregate.solver_nodes);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(b.plan_cache.plans.lookups(), 0u);
}

TEST(MultiClientHostile, FlashCrowdDeterministicAndDistinct) {
  auto cfg = quick(3);
  cfg.phase_align = 1.0;
  const auto a = run_multi_client(cfg);
  const auto b = run_multi_client(cfg);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.aggregate.hits, b.aggregate.hits);
  EXPECT_DOUBLE_EQ(a.aggregate.mean_access_time(),
                   b.aggregate.mean_access_time());
  // Herd viewing times genuinely change the trajectory vs. independent
  // phases...
  const auto calm = run_multi_client(quick(3));
  EXPECT_NE(a.makespan, calm.makespan);
  // ...and the blended v varies with the cycle index, which breaks the
  // oracle memo's context-key promise — the memo must sit out entirely.
  EXPECT_EQ(a.plan_cache.plans.lookups(), 0u);
  EXPECT_EQ(a.plan_cache.selections.lookups(), 0u);
}

TEST(MultiClientHostile, LinkScheduleRepricesTimingNotDecisions) {
  // Phase-at-start pricing changes WHEN transfers complete, never what
  // the planner fetches: planning and the network_time metrics keep
  // seeing the static base r_i (the stale-estimate regime), so every
  // decision-path counter is bit-identical to the static-link run while
  // the realized makespan moves.
  auto calm_cfg = quick(3);
  auto stormy_cfg = quick(3);
  stormy_cfg.link_schedule = {{200.0, 1.0, 0.0}, {60.0, 0.25, 2.0}};
  const auto calm = run_multi_client(calm_cfg);
  const auto stormy = run_multi_client(stormy_cfg);
  EXPECT_EQ(calm.aggregate.demand_fetches, stormy.aggregate.demand_fetches);
  EXPECT_EQ(calm.aggregate.prefetch_fetches,
            stormy.aggregate.prefetch_fetches);
  EXPECT_EQ(calm.aggregate.solver_nodes, stormy.aggregate.solver_nodes);
  EXPECT_DOUBLE_EQ(calm.aggregate.network_time,
                   stormy.aggregate.network_time);
  EXPECT_NE(calm.makespan, stormy.makespan);
  // A degraded window can only serialize MORE wall-clock per unit of
  // base network time, never less (bandwidth 0.25 < 1, latency 2 > 0).
  EXPECT_GT(stormy.makespan, calm.makespan);
  const auto again = run_multi_client(stormy_cfg);
  EXPECT_DOUBLE_EQ(stormy.makespan, again.makespan);
}

TEST(MultiClientHostile, HostileFieldValidation) {
  auto cfg = quick(2);
  cfg.phase_align = 1.5;
  EXPECT_THROW(run_multi_client(cfg), std::invalid_argument);
  cfg = quick(2);
  cfg.phase_align = -0.1;
  EXPECT_THROW(run_multi_client(cfg), std::invalid_argument);
  cfg = quick(2);
  cfg.churn_period = -1.0;
  EXPECT_THROW(run_multi_client(cfg), std::invalid_argument);
  cfg = quick(2);
  cfg.link_schedule = {{0.0, 1.0, 0.0}};  // zero-duration phase
  EXPECT_THROW(run_multi_client(cfg), std::invalid_argument);
  cfg = quick(2);
  cfg.link_schedule = {{100.0, -1.0, 0.0}};  // negative bandwidth
  EXPECT_THROW(run_multi_client(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace skp
