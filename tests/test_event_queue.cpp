#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

namespace skp {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, ProcessesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoAmongSimultaneousEvents) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1;
  q.schedule_at(2.0, [&] { q.schedule_in(3.0, [&] { fired_at = q.now(); }); });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.step();
  EXPECT_THROW(q.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(10.0, [&] { ++fired; });
  q.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.run_until(42.0);
  EXPECT_DOUBLE_EQ(q.now(), 42.0);
}

TEST(EventQueue, EventsMaySpawnEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> spawn = [&] {
    if (++depth < 5) q.schedule_in(1.0, spawn);
  };
  q.schedule_at(0.0, spawn);
  q.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, AdvanceToRespectsPendingEvents) {
  EventQueue q;
  q.schedule_at(3.0, [] {});
  EXPECT_THROW(q.advance_to(4.0), std::invalid_argument);
  q.advance_to(2.0);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_THROW(q.advance_to(1.0), std::invalid_argument);
}

TEST(EventQueue, ProcessedCounter) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_at(i, [] {});
  q.run_all();
  EXPECT_EQ(q.processed(), 7u);
}

TEST(EventQueue, DispatchDoesNotCopyTheScheduledClosure) {
  // step() must MOVE the popped event out of the heap; the historical
  // `Event ev = heap_.top()` copy re-allocated every captured state once
  // per dispatched event, which dominated dense DES runs.
  auto copies = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> copies;
    explicit Probe(std::shared_ptr<int> c) : copies(std::move(c)) {}
    Probe(const Probe& o) : copies(o.copies) { ++*copies; }
    Probe(Probe&& o) noexcept = default;
  };
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 4; ++i) {
    q.schedule_at(static_cast<double>(i),
                  [p = Probe(copies), &fired] { ++fired; });
  }
  // Wrapping the lambdas into std::function may copy during scheduling;
  // only the dispatch path is under test.
  *copies = 0;
  q.run_all();
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(*copies, 0) << "dispatch must move events out of the heap";
}

TEST(EventQueue, RunUntilInclusiveOfHorizonEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(5.0, [&] { ++fired; });
  q.run_until(5.0);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace skp
