#include "core/lookahead.hpp"

#include <gtest/gtest.h>

#include "sim/prefetch_cache.hpp"

namespace skp {
namespace {

double sum(const std::vector<double>& p) {
  double s = 0;
  for (double x : p) s += x;
  return s;
}

// A tiny deterministic 3-state chain: 0 -> 1 -> 2 -> 0.
std::vector<std::vector<double>> cycle_matrix() {
  return {{0, 1, 0}, {0, 0, 1}, {1, 0, 0}};
}

TEST(Lookahead, HorizonOneIsThePlainRow) {
  const auto m = cycle_matrix();
  const std::vector<double> row{0, 1, 0};
  const auto p = horizon_probabilities(m, row, 1);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 0.0);
}

TEST(Lookahead, HorizonTwoBlendsNextStep) {
  const auto m = cycle_matrix();
  const std::vector<double> row{0, 1, 0};
  // Step 1: {0,1,0} weight 1; step 2: {0,0,1} weight .5 -> normalized.
  const auto p = horizon_probabilities(m, row, 2, 0.5);
  EXPECT_NEAR(p[1], 1.0 / 1.5, 1e-12);
  EXPECT_NEAR(p[2], 0.5 / 1.5, 1e-12);
  EXPECT_NEAR(sum(p), 1.0, 1e-12);
}

TEST(Lookahead, DeepHorizonStaysNormalized) {
  const auto m = cycle_matrix();
  const std::vector<double> row{0, 1, 0};
  for (std::size_t h = 1; h <= 6; ++h) {
    EXPECT_NEAR(sum(horizon_probabilities(m, row, h, 0.7)), 1.0, 1e-12);
  }
}

TEST(Lookahead, DecayOneWeighsStepsEqually) {
  const auto m = cycle_matrix();
  const std::vector<double> row{0, 1, 0};
  const auto p = horizon_probabilities(m, row, 3, 1.0);
  // Three steps visit 1, 2, 0 once each.
  EXPECT_NEAR(p[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(p[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(p[2], 1.0 / 3.0, 1e-12);
}

TEST(Lookahead, Validation) {
  const auto m = cycle_matrix();
  const std::vector<double> row{0, 1, 0};
  EXPECT_THROW(horizon_probabilities(m, row, 0), std::invalid_argument);
  EXPECT_THROW(horizon_probabilities(m, row, 2, 0.0),
               std::invalid_argument);
  EXPECT_THROW(horizon_probabilities(m, row, 2, 1.5),
               std::invalid_argument);
  const std::vector<std::vector<double>> ragged{{1, 0}, {0, 1, 0}};
  EXPECT_THROW(
      horizon_probabilities(ragged, std::vector<double>{1, 0}, 2),
      std::invalid_argument);
}

TEST(Lookahead, MarkovSourceOverloadMatchesMatrixOverload) {
  Rng rng(71);
  MarkovSourceConfig cfg;
  cfg.n_states = 15;
  cfg.out_degree_lo = 3;
  cfg.out_degree_hi = 5;
  const MarkovSource src(cfg, rng);
  // Dense copy of the transition matrix.
  std::vector<std::vector<double>> m(cfg.n_states);
  for (std::size_t s = 0; s < cfg.n_states; ++s) {
    const auto row = src.transition_row(s);
    m[s].assign(row.begin(), row.end());
  }
  for (std::size_t s = 0; s < cfg.n_states; ++s) {
    const auto a = horizon_probabilities(src, s, 3, 0.6);
    const auto b = horizon_probabilities(m, m[s], 3, 0.6);
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_NEAR(a[j], b[j], 1e-12);
    }
  }
}

TEST(Lookahead, HorizonTwoMatchesHandChainCalculation) {
  // 2-state chain with P(0->1) = .8, P(0->0) = .2 etc.
  const std::vector<std::vector<double>> m{{0.2, 0.8}, {0.6, 0.4}};
  const auto p = horizon_probabilities(m, m[0], 2, 0.5);
  // step1 = {.2, .8}; step2 = {.2*.2+.8*.6, .2*.8+.8*.4} = {.52, .48}
  // blended = ({.2,.8} + .5*{.52,.48}) / 1.5
  EXPECT_NEAR(p[0], (0.2 + 0.26) / 1.5, 1e-12);
  EXPECT_NEAR(p[1], (0.8 + 0.24) / 1.5, 1e-12);
}

TEST(LookaheadSim, DeeperHorizonHelpsWithRoomyCache) {
  // With a cache big enough to keep step-2 items around, a 2-step horizon
  // should not hurt and typically helps (more cache hits).
  PrefetchCacheConfig base;
  base.source.n_states = 40;
  base.source.out_degree_lo = 4;
  base.source.out_degree_hi = 8;
  base.cache_size = 20;
  base.requests = 5000;
  base.seed = 21;
  auto run_h = [&](std::size_t h) {
    auto cfg = base;
    cfg.lookahead_horizon = h;
    return run_prefetch_cache(cfg).metrics.mean_access_time();
  };
  const double h1 = run_h(1);
  const double h2 = run_h(2);
  EXPECT_LT(h2, h1 * 1.1);  // never materially worse
}

TEST(LookaheadSim, HorizonOneIsThePaperBehaviour) {
  PrefetchCacheConfig a;
  a.source.n_states = 30;
  a.source.out_degree_lo = 4;
  a.source.out_degree_hi = 6;
  a.cache_size = 8;
  a.requests = 2000;
  a.seed = 5;
  auto b = a;
  b.lookahead_horizon = 1;  // explicit default
  EXPECT_DOUBLE_EQ(run_prefetch_cache(a).metrics.mean_access_time(),
                   run_prefetch_cache(b).metrics.mean_access_time());
}

}  // namespace
}  // namespace skp
