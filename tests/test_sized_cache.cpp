#include "cache/sized_cache.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/arbitration.hpp"
#include "core/prefetch_engine.hpp"
#include "sim/prefetch_cache.hpp"
#include "test_util.hpp"

namespace skp {
namespace {

SizedCache make_cache(double capacity = 10.0) {
  // sizes: item 0 -> 4, 1 -> 2, 2 -> 6, 3 -> 1
  return SizedCache({4.0, 2.0, 6.0, 1.0}, capacity);
}

TEST(SizedCache, ConstructionValidation) {
  EXPECT_THROW(SizedCache({}, 5.0), std::invalid_argument);
  EXPECT_THROW(SizedCache({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(SizedCache({1.0, 0.0}, 5.0), std::invalid_argument);
}

TEST(SizedCache, TracksUsedSpace) {
  SizedCache c = make_cache();
  c.insert(0);
  c.insert(1);
  EXPECT_DOUBLE_EQ(c.used(), 6.0);
  EXPECT_DOUBLE_EQ(c.free_space(), 4.0);
  EXPECT_EQ(c.count(), 2u);
}

TEST(SizedCache, FitsAndCacheable) {
  SizedCache c = make_cache(5.0);
  EXPECT_TRUE(c.cacheable(0));   // 4 <= 5
  EXPECT_FALSE(c.cacheable(2));  // 6 > 5
  c.insert(0);
  EXPECT_FALSE(c.fits(1));  // free = 1 < 2
  EXPECT_TRUE(c.fits(3));   // free = 1 >= 1
}

TEST(SizedCache, InsertValidation) {
  SizedCache c = make_cache(5.0);
  c.insert(0);
  EXPECT_THROW(c.insert(0), std::invalid_argument);   // duplicate
  EXPECT_THROW(c.insert(1), std::invalid_argument);   // does not fit
  EXPECT_THROW(c.insert(2), std::invalid_argument);   // uncacheable
  EXPECT_THROW(c.insert(9), std::invalid_argument);   // out of catalog
}

TEST(SizedCache, EraseReleasesSpace) {
  SizedCache c = make_cache();
  c.insert(0);
  c.insert(2);
  c.erase(0);
  EXPECT_DOUBLE_EQ(c.used(), 6.0);
  EXPECT_FALSE(c.contains(0));
  EXPECT_THROW(c.erase(0), std::invalid_argument);
}

TEST(SizedCache, ClearResets) {
  SizedCache c = make_cache();
  c.insert(0);
  c.clear();
  EXPECT_TRUE(c.empty());
  EXPECT_DOUBLE_EQ(c.used(), 0.0);
}

TEST(GatherVictims, NoEvictionWhenSpaceFree) {
  SizedCache c = make_cache();
  c.insert(3);  // used 1, free 9
  Instance inst = testing::small_instance();
  const VictimSet vs =
      gather_victims_by_density(inst, c, nullptr, {}, 4.0);
  EXPECT_TRUE(vs.ok);
  EXPECT_TRUE(vs.victims.empty());
}

TEST(GatherVictims, EvictsByPrDensity) {
  // profits: 0 -> 5, 1 -> 6, 2 -> .75, 3 -> .4; sizes 4, 2, 6, 1.
  // Densities: 0 -> 1.25, 1 -> 3.0, 2 -> .125, 3 -> .4.
  SizedCache c = make_cache(13.0);
  c.insert(0);
  c.insert(1);
  c.insert(2);  // used 12, free 1
  const Instance inst = testing::small_instance();
  const VictimSet vs =
      gather_victims_by_density(inst, c, nullptr, {}, 5.0);
  ASSERT_TRUE(vs.ok);
  // Needs 4 more units: item 2 (density .125, size 6) suffices alone.
  ASSERT_EQ(vs.victims.size(), 1u);
  EXPECT_EQ(vs.victims[0], 2);
  EXPECT_DOUBLE_EQ(vs.freed, 6.0);
}

TEST(GatherVictims, MultipleVictimsAccumulate) {
  SizedCache c = make_cache(13.0);
  c.insert(0);
  c.insert(1);
  c.insert(2);  // free 1
  const Instance inst = testing::small_instance();
  // Need 11 free: victims 2 (6) then 0 (density 1.25) -> freed 10 + 1
  // free = 11.
  const VictimSet vs =
      gather_victims_by_density(inst, c, nullptr, {}, 11.0);
  ASSERT_TRUE(vs.ok);
  ASSERT_EQ(vs.victims.size(), 2u);
  EXPECT_EQ(vs.victims[0], 2);
  EXPECT_EQ(vs.victims[1], 0);
}

TEST(GatherVictims, ImpossibleRequestReportsNotOk) {
  SizedCache c = make_cache(8.0);
  c.insert(0);  // used 4
  const Instance inst = testing::small_instance();
  const VictimSet vs =
      gather_victims_by_density(inst, c, nullptr, {}, 100.0);
  EXPECT_FALSE(vs.ok);
}

TEST(SizedPlanning, OversizedItemsNeverPlanned) {
  Instance inst = testing::small_instance();
  inst.v = 100.0;
  SizedCache cache({4.0, 50.0, 6.0, 1.0}, 10.0);  // item 1 uncacheable
  FreqTracker freq(inst.n());
  EngineConfig ecfg;
  ecfg.policy = PrefetchPolicy::SKP;
  const PrefetchEngine engine(ecfg);
  const auto plan = engine.plan_with_sized_cache(inst, cache, &freq);
  for (const ItemId f : plan.fetch) {
    EXPECT_NE(f, 1);
  }
  EXPECT_FALSE(plan.fetch.empty());
}

TEST(SizedPlanning, AdmissionComparesAggregatePr) {
  // Candidate must beat the combined Pr of everything it displaces. Cache
  // holds items 2 and 3 (total profit 1.15) in capacity 7; candidate 0
  // (profit 5, size 4) must evict both -> admitted. Then candidate 1 is
  // uncacheable in the leftover arrangement.
  Instance inst = testing::small_instance();
  inst.v = 11.0;  // fits item 0's retrieval (10 < 11), no stretch
  SizedCache cache({4.0, 2.0, 6.0, 1.0}, 7.0);
  cache.insert(2);
  cache.insert(3);  // used 7, free 0
  FreqTracker freq(inst.n());
  EngineConfig ecfg;
  ecfg.policy = PrefetchPolicy::SKP;
  const PrefetchEngine engine(ecfg);
  const auto plan = engine.plan_with_sized_cache(inst, cache, &freq);
  ASSERT_FALSE(plan.fetch.empty());
  EXPECT_EQ(plan.fetch.front(), 0);
  // Item 0 (size 4) fits after evicting item 2 (size 6): one victim.
  EXPECT_EQ(plan.evict, (std::vector<ItemId>{2}));
}

TEST(SizedPlanning, LowProfitCandidateRejected) {
  // Cache holds the high-profit item 1 (profit 6, size 2) in capacity 2;
  // every candidate would need to displace it and none beats profit 6
  // except item... 0 has profit 5 < 6 -> nothing admitted.
  Instance inst = testing::small_instance();
  inst.v = 100.0;
  SizedCache cache({4.0, 2.0, 6.0, 1.0}, 2.0);
  cache.insert(1);
  FreqTracker freq(inst.n());
  EngineConfig ecfg;
  ecfg.policy = PrefetchPolicy::SKP;
  const PrefetchEngine engine(ecfg);
  const auto plan = engine.plan_with_sized_cache(inst, cache, &freq);
  // Item 0 (size 4) is uncacheable in capacity 2; items 2, 3 have lower
  // profit than the resident -> no prefetch survives arbitration.
  EXPECT_TRUE(plan.fetch.empty());
}

TEST(SizedPlanning, EqualSizesDegenerateToSlotBehaviour) {
  // With uniform sizes and capacity = k * size, the sized planner must
  // admit the same fetch set as the slot planner.
  Rng rng(601);
  for (int trial = 0; trial < 50; ++trial) {
    testing::RandomInstanceOptions opt;
    opt.n = 8;
    const Instance inst = testing::random_instance(rng, opt);
    SlotCache slots(inst.n(), 3);
    SizedCache sized(std::vector<double>(inst.n(), 1.0), 3.0);
    // Same random residents.
    std::vector<ItemId> ids(inst.n());
    std::iota(ids.begin(), ids.end(), 0);
    rng.shuffle(ids);
    for (int k = 0; k < 3; ++k) {
      slots.insert(ids[k]);
      sized.insert(ids[k]);
    }
    FreqTracker freq(inst.n());
    EngineConfig ecfg;
    ecfg.policy = PrefetchPolicy::SKP;
    const PrefetchEngine engine(ecfg);
    const auto plan_slot = engine.plan_with_cache(inst, slots, &freq);
    const auto plan_sized =
        engine.plan_with_sized_cache(inst, sized, &freq);
    EXPECT_EQ(plan_slot.fetch, plan_sized.fetch) << "trial " << trial;
  }
}

TEST(SizedExperiment, RunsAndImprovesWithCapacity) {
  SizedExperimentConfig cfg;
  cfg.source.n_states = 30;
  cfg.source.out_degree_lo = 4;
  cfg.source.out_degree_hi = 8;
  cfg.requests = 2000;
  cfg.seed = 3;
  cfg.capacity = 30.0;
  const auto small = run_prefetch_cache_sized(cfg);
  cfg.capacity = 400.0;
  const auto large = run_prefetch_cache_sized(cfg);
  EXPECT_EQ(small.metrics.requests, 2000u);
  EXPECT_LT(large.metrics.mean_access_time(),
            small.metrics.mean_access_time());
}

TEST(SizedExperiment, UniformSizeMatchesSlotModelClosely) {
  // size_per_r = 0 with size_lo == size_hi gives equal sizes; capacity
  // k * size should behave like a k-slot cache (same protocol).
  SizedExperimentConfig scfg;
  scfg.source.n_states = 30;
  scfg.source.out_degree_lo = 4;
  scfg.source.out_degree_hi = 8;
  scfg.requests = 3000;
  scfg.seed = 7;
  scfg.size_per_r = 0.0;
  scfg.size_lo = scfg.size_hi = 1.0;
  scfg.capacity = 8.0;
  const auto sized = run_prefetch_cache_sized(scfg);

  PrefetchCacheConfig ccfg;
  ccfg.source = scfg.source;
  ccfg.cache_size = 8;
  ccfg.requests = 3000;
  ccfg.seed = 7;
  const auto slots = run_prefetch_cache(ccfg);
  EXPECT_NEAR(sized.metrics.mean_access_time(),
              slots.metrics.mean_access_time(), 1.0);
}

}  // namespace
}  // namespace skp
