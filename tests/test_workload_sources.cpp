// Tests for the two new first-class workload generators: the Zipf
// catalog (workload/zipf_source.hpp) and phase-shifting Markov drift
// (MarkovSource::redraw_transitions + PrefetchCacheConfig::drift_period).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/prefetch_cache.hpp"
#include "util/rng.hpp"
#include "workload/markov_source.hpp"
#include "workload/zipf_source.hpp"

namespace skp {
namespace {

ZipfSourceConfig unshuffled_zipf(std::size_t n, double s) {
  ZipfSourceConfig cfg;
  cfg.n_items = n;
  cfg.exponent = s;
  cfg.shuffle = false;  // item id == popularity rank
  return cfg;
}

// ---- ZipfSource ---------------------------------------------------------

TEST(ZipfSource, TailExponentMatchesConfiguredS) {
  // Unshuffled: P(item k) proportional to (k+1)^-s, so the log-log slope
  // between any two ranks recovers s exactly (up to normalization, which
  // cancels in the ratio).
  for (const double s : {0.7, 1.1, 2.0}) {
    Rng rng(11);
    const MarkovSource src = make_zipf_source(unshuffled_zipf(64, s), rng);
    const auto row = src.transition_row(0);
    for (const std::size_t k : {1UL, 7UL, 63UL}) {
      const double slope = std::log(row[0] / row[k]) /
                           std::log(static_cast<double>(k + 1));
      EXPECT_NEAR(slope, s, 1e-9) << "s=" << s << " k=" << k;
    }
  }
}

TEST(ZipfSource, RowIsANormalizedDistributionSharedByAllStates) {
  Rng rng(3);
  const MarkovSource src = make_zipf_source(unshuffled_zipf(32, 1.1), rng);
  const auto row0 = src.transition_row(0);
  double sum = 0.0;
  for (const double p : row0) {
    EXPECT_GT(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Rank-1 chain: every state carries the identical row and the full
  // catalog as successor list.
  for (const std::size_t state : {5UL, 31UL}) {
    const auto row = src.transition_row(state);
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(row[i], row0[i]);
    }
    EXPECT_EQ(src.successors(state).size(), 32u);
  }
  // Unshuffled rows are monotone in rank.
  for (std::size_t i = 1; i < row0.size(); ++i) {
    EXPECT_LT(row0[i], row0[i - 1]);
  }
}

TEST(ZipfSource, FixedSeedReproducible) {
  ZipfSourceConfig cfg;
  cfg.n_items = 40;
  Rng a(99), b(99);
  const MarkovSource s1 = make_zipf_source(cfg, a);
  const MarkovSource s2 = make_zipf_source(cfg, b);
  for (std::size_t i = 0; i < cfg.n_items; ++i) {
    EXPECT_EQ(s1.viewing_time(i), s2.viewing_time(i));
    EXPECT_EQ(s1.retrieval_time(static_cast<ItemId>(i)),
              s2.retrieval_time(static_cast<ItemId>(i)));
  }
  const auto r1 = s1.transition_row(0);
  const auto r2 = s2.transition_row(0);
  for (std::size_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i], r2[i]);
  // Identical walks from identical streams.
  MarkovSource w1 = s1, w2 = s2;
  Rng walk1(5), walk2(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(w1.step(walk1), w2.step(walk2));
  }
}

TEST(ZipfSource, RejectsBadConfiguration) {
  Rng rng(1);
  ZipfSourceConfig one;
  one.n_items = 1;
  EXPECT_THROW(make_zipf_source(one, rng), std::invalid_argument);
  ZipfSourceConfig bad_s;
  bad_s.exponent = 0.0;
  EXPECT_THROW(make_zipf_source(bad_s, rng), std::invalid_argument);
}

// ---- Explicit-chain constructor -----------------------------------------

TEST(MarkovSourceExplicit, ValidatesStructure) {
  const std::vector<double> v{10.0, 20.0};
  const std::vector<double> r{1.0, 2.0};
  // Row of state 0 -> state 1, row of state 1 -> state 0.
  EXPECT_NO_THROW(MarkovSource(v, r, {{1}, {0}}, {{1.0}, {1.0}}));
  // Probabilities must sum to 1.
  EXPECT_THROW(MarkovSource(v, r, {{1}, {0}}, {{0.5}, {1.0}}),
               std::invalid_argument);
  // Successors must be ascending and in range.
  EXPECT_THROW(MarkovSource(v, r, {{1, 0}, {0}}, {{0.5, 0.5}, {1.0}}),
               std::invalid_argument);
  EXPECT_THROW(MarkovSource(v, r, {{2}, {0}}, {{1.0}, {1.0}}),
               std::invalid_argument);
  // No empty rows.
  EXPECT_THROW(MarkovSource(v, r, {{}, {0}}, {{}, {1.0}}),
               std::invalid_argument);
}

// ---- Phase-shifting drift -----------------------------------------------

TEST(MarkovDrift, RedrawChangesTransitionsKeepsCatalogs) {
  MarkovSourceConfig cfg;
  cfg.n_states = 30;
  Rng build(42);
  MarkovSource src(cfg, build);
  const std::vector<double> v_before = [&] {
    std::vector<double> v(cfg.n_states);
    for (std::size_t i = 0; i < cfg.n_states; ++i) {
      v[i] = src.viewing_time(i);
    }
    return v;
  }();
  const std::vector<double> r_before(src.retrieval_times().begin(),
                                     src.retrieval_times().end());
  std::vector<std::vector<double>> rows_before;
  for (std::size_t s = 0; s < cfg.n_states; ++s) {
    rows_before.emplace_back(src.transition_row(s).begin(),
                             src.transition_row(s).end());
  }

  Rng drift(7);
  src.redraw_transitions(cfg, drift);

  bool any_row_changed = false;
  for (std::size_t s = 0; s < cfg.n_states; ++s) {
    EXPECT_EQ(src.viewing_time(s), v_before[s]);
    EXPECT_EQ(src.retrieval_times()[s], r_before[s]);
    const auto row = src.transition_row(s);
    double sum = 0.0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      sum += row[i];
      if (row[i] != rows_before[s][i]) any_row_changed = true;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  EXPECT_TRUE(any_row_changed);
}

TEST(MarkovDrift, ChangepointsAreDeterministic) {
  // Two sources drifted with identical streams stay identical; a third
  // drifted with a different stream diverges.
  MarkovSourceConfig cfg;
  cfg.n_states = 20;
  Rng b1(5), b2(5), b3(5);
  MarkovSource s1(cfg, b1), s2(cfg, b2), s3(cfg, b3);
  Rng d1(9), d2(9), d3(10);
  s1.redraw_transitions(cfg, d1);
  s2.redraw_transitions(cfg, d2);
  s3.redraw_transitions(cfg, d3);
  bool diverged = false;
  for (std::size_t s = 0; s < cfg.n_states; ++s) {
    const auto r1 = s1.transition_row(s);
    const auto r2 = s2.transition_row(s);
    const auto r3 = s3.transition_row(s);
    for (std::size_t i = 0; i < r1.size(); ++i) {
      EXPECT_EQ(r1[i], r2[i]);
      if (r1[i] != r3[i]) diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(MarkovDrift, SimDeterministicAndDistinctFromStaticChain) {
  PrefetchCacheConfig cfg;
  cfg.cache_size = 12;
  cfg.requests = 3'000;
  cfg.seed = 13;
  cfg.drift_period = 500;
  const PrefetchCacheResult a = run_prefetch_cache(cfg);
  const PrefetchCacheResult b = run_prefetch_cache(cfg);
  EXPECT_EQ(a.metrics.hits, b.metrics.hits);
  EXPECT_EQ(a.metrics.network_time, b.metrics.network_time);
  EXPECT_EQ(a.metrics.solver_nodes, b.metrics.solver_nodes);

  cfg.drift_period = 0;
  const PrefetchCacheResult still = run_prefetch_cache(cfg);
  EXPECT_NE(a.metrics.network_time, still.metrics.network_time)
      << "drift changed nothing";
}

TEST(MarkovDrift, PlanCacheOnOffBitIdentical) {
  // The changepoint invalidation must keep memoized runs exactly equal to
  // unmemoized ones — a stale plan surviving a redraw would show up here.
  for (const SubArbitration sub :
       {SubArbitration::None, SubArbitration::DS}) {
    PrefetchCacheConfig cfg;
    cfg.cache_size = 10;
    cfg.sub = sub;
    cfg.requests = 2'400;
    cfg.seed = 77;
    cfg.drift_period = 400;
    cfg.use_plan_cache = true;
    const PrefetchCacheResult on = run_prefetch_cache(cfg);
    cfg.use_plan_cache = false;
    const PrefetchCacheResult off = run_prefetch_cache(cfg);
    EXPECT_EQ(on.metrics.hits, off.metrics.hits);
    EXPECT_EQ(on.metrics.demand_fetches, off.metrics.demand_fetches);
    EXPECT_EQ(on.metrics.prefetch_fetches, off.metrics.prefetch_fetches);
    EXPECT_EQ(on.metrics.wasted_prefetches, off.metrics.wasted_prefetches);
    EXPECT_EQ(on.metrics.network_time, off.metrics.network_time);
    EXPECT_EQ(on.metrics.solver_nodes, off.metrics.solver_nodes);
    EXPECT_EQ(on.metrics.mean_access_time(), off.metrics.mean_access_time());
  }
}

TEST(ZipfWorkload, PrefetchCacheSimFavorsHotItems) {
  // A strongly skewed catalog with a cache a fraction of the catalog size
  // should hit far more often than the same sim under a flat-ish chain:
  // the head of the Zipf distribution fits in the cache.
  Rng build(21);
  ZipfSourceConfig zcfg;
  zcfg.n_items = 100;
  zcfg.exponent = 1.4;
  MarkovSource source = make_zipf_source(zcfg, build);
  Rng walk = build.split(kPrefetchCacheWalkSalt);
  source.teleport(0);
  PrefetchCacheConfig cfg;
  cfg.cache_size = 15;
  cfg.requests = 4'000;
  cfg.seed = 21;
  const PrefetchCacheResult res = run_prefetch_cache(cfg, source, walk);
  EXPECT_GT(res.metrics.hit_rate(), 0.5);
}

}  // namespace
}  // namespace skp
