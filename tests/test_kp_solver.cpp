#include "core/kp_solver.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/brute_force.hpp"
#include "test_util.hpp"

namespace skp {
namespace {

TEST(KpBb, HandCheckedSelection) {
  // small_instance: profits {5, 6, .75, .4}, weights {10, 20, 5, 8}, v=12.
  // Best within capacity 12: {0} (5) vs {2,3} (1.15) vs {0,... 0+2=15 no}.
  const Instance inst = testing::small_instance();
  const KpSolution sol = solve_kp_bb(inst);
  EXPECT_DOUBLE_EQ(sol.value, 5.0);
  EXPECT_EQ(sol.items, (std::vector<ItemId>{0}));
  EXPECT_DOUBLE_EQ(sol.weight, 10.0);
}

TEST(KpBb, TakesEverythingWhenCapacityLarge) {
  Instance inst = testing::small_instance();
  inst.v = 100.0;
  const KpSolution sol = solve_kp_bb(inst);
  EXPECT_EQ(sol.items.size(), 4u);
  EXPECT_NEAR(sol.value, 12.15, 1e-12);
}

TEST(KpBb, EmptyWhenNothingFits) {
  Instance inst = testing::small_instance();
  inst.v = 3.0;
  const KpSolution sol = solve_kp_bb(inst);
  EXPECT_TRUE(sol.items.empty());
  EXPECT_DOUBLE_EQ(sol.value, 0.0);
}

TEST(KpBb, ZeroCapacity) {
  Instance inst = testing::small_instance();
  inst.v = 0.0;
  const KpSolution sol = solve_kp_bb(inst);
  EXPECT_TRUE(sol.items.empty());
}

TEST(KpBb, RespectsCandidateSubset) {
  // r_2 + r_3 = 13 > v = 12 so only one fits; item 2 has higher profit.
  const Instance inst = testing::small_instance();
  const std::vector<ItemId> cand{2, 3};
  const KpSolution sol = solve_kp_bb(inst, cand);
  EXPECT_EQ(sol.items, (std::vector<ItemId>{2}));
  EXPECT_DOUBLE_EQ(sol.value, 0.75);
}

TEST(KpBb, SubsetCapacityRespected) {
  // r_2 + r_3 = 13 > v = 12, so only one of them fits; best is item 2
  // by profit? profit(2) = .75 > profit(3) = .4.
  const Instance inst = testing::small_instance();
  const std::vector<ItemId> cand{2, 3};
  const KpSolution sol = solve_kp_bb(inst, cand);
  double total_w = 0;
  for (ItemId i : sol.items) total_w += inst.r[Instance::idx(i)];
  EXPECT_LE(total_w, inst.v);
}

TEST(KpDp, MatchesBbOnIntegerInstances) {
  Rng rng(101);
  testing::RandomInstanceOptions opt;
  opt.n = 10;
  opt.integer_times = true;
  for (int trial = 0; trial < 100; ++trial) {
    const Instance inst = testing::random_instance(rng, opt);
    const KpSolution bb = solve_kp_bb(inst);
    const KpSolution dp = solve_kp_dp(inst);
    EXPECT_NEAR(bb.value, dp.value, 1e-9) << "trial " << trial;
  }
}

TEST(KpDp, RejectsFractionalWeights) {
  Instance inst = testing::small_instance();
  inst.r[0] = 10.5;
  EXPECT_THROW(solve_kp_dp(inst), std::invalid_argument);
}

TEST(KpDp, RejectsFractionalCapacity) {
  Instance inst = testing::small_instance();
  inst.v = 12.5;
  EXPECT_THROW(solve_kp_dp(inst), std::invalid_argument);
}

TEST(KpBb, MatchesBruteForce) {
  Rng rng(103);
  testing::RandomInstanceOptions opt;
  opt.n = 12;
  for (int trial = 0; trial < 100; ++trial) {
    const Instance inst = testing::random_instance(rng, opt);
    std::vector<ItemId> ids(inst.n());
    std::iota(ids.begin(), ids.end(), 0);
    const KpSolution bb = solve_kp_bb(inst);
    const BruteForceResult bf = brute_force_kp(inst, ids);
    EXPECT_NEAR(bb.value, bf.g, 1e-9) << "trial " << trial;
  }
}

TEST(GreedyKp, NeverExceedsExact) {
  Rng rng(107);
  testing::RandomInstanceOptions opt;
  opt.n = 10;
  for (int trial = 0; trial < 100; ++trial) {
    const Instance inst = testing::random_instance(rng, opt);
    std::vector<ItemId> ids(inst.n());
    std::iota(ids.begin(), ids.end(), 0);
    const KpSolution greedy = greedy_kp(inst, ids);
    const KpSolution exact = solve_kp_bb(inst);
    EXPECT_LE(greedy.value, exact.value + 1e-9);
    EXPECT_LE(greedy.weight, inst.v);
  }
}

TEST(GreedyKp, TakesInCanonicalOrder) {
  const Instance inst = testing::small_instance();
  std::vector<ItemId> ids{0, 1, 2, 3};
  const KpSolution sol = greedy_kp(inst, ids);
  // Canonical order 0,1,2,3: take 0 (10), skip 1 (20), skip 2 (5 > 2)...
  EXPECT_EQ(sol.items.front(), 0);
}

TEST(DantzigBound, UpperBoundsExactSolution) {
  Rng rng(109);
  testing::RandomInstanceOptions opt;
  opt.n = 12;
  for (int trial = 0; trial < 200; ++trial) {
    const Instance inst = testing::random_instance(rng, opt);
    const auto order = canonical_order(inst);
    const double bound = dantzig_bound(inst, order, 0, inst.v);
    const KpSolution exact = solve_kp_bb(inst);
    EXPECT_GE(bound, exact.value - 1e-9) << "trial " << trial;
  }
}

TEST(DantzigBound, ExactWhenAllFit) {
  Instance inst = testing::small_instance();
  inst.v = 100.0;
  const auto order = canonical_order(inst);
  EXPECT_NEAR(dantzig_bound(inst, order, 0, inst.v), 12.15, 1e-12);
}

TEST(DantzigBound, ZeroForNonPositiveCapacity) {
  const Instance inst = testing::small_instance();
  const auto order = canonical_order(inst);
  EXPECT_DOUBLE_EQ(dantzig_bound(inst, order, 0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(dantzig_bound(inst, order, 0, -5.0), 0.0);
}

TEST(DantzigBound, FractionalFill) {
  // Capacity 5 with order {0 (r=10, P=.5), ...}: bound = 5 * 0.5 = 2.5.
  const Instance inst = testing::small_instance();
  const auto order = canonical_order(inst);
  EXPECT_DOUBLE_EQ(dantzig_bound(inst, order, 0, 5.0), 2.5);
}

TEST(DantzigBound, FromOffsetSkipsPrefix) {
  const Instance inst = testing::small_instance();
  const auto order = canonical_order(inst);
  // From index 2 (items 2, 3): both fit in capacity 13.
  EXPECT_NEAR(dantzig_bound(inst, order, 2, 13.0), 1.15, 1e-12);
}

TEST(KpBb, ReportsSearchStatistics) {
  Rng rng(113);
  testing::RandomInstanceOptions opt;
  opt.n = 14;
  const Instance inst = testing::random_instance(rng, opt);
  const KpSolution sol = solve_kp_bb(inst);
  EXPECT_GT(sol.nodes, 0u);
}

TEST(KpBb, SingleItemInstance) {
  Instance inst;
  inst.P = {1.0};
  inst.r = {5.0};
  inst.v = 10.0;
  const KpSolution sol = solve_kp_bb(inst);
  EXPECT_EQ(sol.items, (std::vector<ItemId>{0}));
  EXPECT_DOUBLE_EQ(sol.value, 5.0);
}

}  // namespace
}  // namespace skp
