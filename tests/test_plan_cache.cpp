// Property tests for the plan-memoization subsystem: Zobrist cache
// fingerprints, PlanCache LRU bounds/stats/generations, the per-state
// CanonicalOrderTable, and the engine's *_cached overloads.
#include "core/plan_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "cache/cache.hpp"
#include "cache/sized_cache.hpp"
#include "cache/zobrist.hpp"
#include "core/prefetch_engine.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace skp {
namespace {

using testing::model_fingerprint;

// ---- Zobrist fingerprints -----------------------------------------------

TEST(ZobristFingerprint, EmptyCacheIsZero) {
  SlotCache cache(16, 4);
  EXPECT_EQ(cache.fingerprint(), 0u);
  cache.insert(3);
  cache.erase(3);
  EXPECT_EQ(cache.fingerprint(), 0u);  // insert/erase are XOR inverses
}

TEST(ZobristFingerprint, OrderIndependent) {
  SlotCache a(32, 8), b(32, 8);
  const ItemId items[] = {5, 17, 2, 30};
  for (const ItemId i : items) a.insert(i);
  for (auto it = std::rbegin(items); it != std::rend(items); ++it) {
    b.insert(*it);
  }
  EXPECT_NE(a.fingerprint(), 0u);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(ZobristFingerprint, ReplaceAndClearTracked) {
  SlotCache cache(16, 2);
  cache.insert(1);
  cache.insert(2);
  const std::uint64_t before = cache.fingerprint();
  cache.replace(1, 7);
  EXPECT_EQ(cache.fingerprint(),
            before ^ zobrist_item_key(1) ^ zobrist_item_key(7));
  cache.clear();
  EXPECT_EQ(cache.fingerprint(), 0u);
}

TEST(ZobristFingerprint, RandomWalkMatchesSetModel) {
  // Insert/erase inverse over a long random walk, for both cache kinds.
  Rng rng(2024);
  SlotCache slot(40, 12);
  std::vector<double> sizes(40, 2.0);
  SizedCache sized(sizes, 24.0);
  std::set<ItemId> slot_model, sized_model;
  for (int op = 0; op < 20000; ++op) {
    const auto item = static_cast<ItemId>(rng.next_below(40));
    if (slot_model.count(item)) {
      slot.erase(item);
      slot_model.erase(item);
    } else if (slot_model.size() < 12) {
      slot.insert(item);
      slot_model.insert(item);
    }
    if (sized_model.count(item)) {
      sized.erase(item);
      sized_model.erase(item);
    } else if (sized.fits(item)) {
      sized.insert(item);
      sized_model.insert(item);
    }
    ASSERT_EQ(slot.fingerprint(), model_fingerprint(slot_model));
    ASSERT_EQ(sized.fingerprint(), model_fingerprint(sized_model));
  }
}

TEST(ZobristFingerprint, CollisionSmokeOverRandomSets) {
  // Thousands of distinct random subsets of one catalog must all map to
  // distinct fingerprints (a collision here is a ~2^-64 event, i.e. a
  // bug in the key function, not bad luck).
  Rng rng(7);
  std::map<std::uint64_t, std::set<ItemId>> seen;
  for (int trial = 0; trial < 5000; ++trial) {
    std::set<ItemId> s;
    const std::size_t k = rng.next_below(12);
    for (std::size_t j = 0; j < k; ++j) {
      s.insert(static_cast<ItemId>(rng.next_below(128)));
    }
    const std::uint64_t fp = model_fingerprint(s);
    const auto [it, inserted] = seen.emplace(fp, s);
    if (!inserted) {
      EXPECT_EQ(it->second, s)
          << "distinct sets collided on fingerprint " << fp;
    }
  }
}

// ---- PlanCache ----------------------------------------------------------

StoredPlan make_plan(ItemId tag) {
  StoredPlan p;
  p.fetch = {tag};
  p.evict = {static_cast<ItemId>(tag + 1)};
  p.predicted_g = static_cast<double>(tag) * 0.5;
  p.stretch = 1.0;
  p.solver_nodes = static_cast<std::uint64_t>(tag);
  return p;
}

TEST(PlanCacheTest, FindAfterInsertRoundTrips) {
  PlanCache cache(0xd16e57, 8);
  EXPECT_EQ(cache.config_digest(), 0xd16e57u);
  EXPECT_EQ(cache.find(1, 2), nullptr);
  *cache.insert(1, 2) = make_plan(9);
  const StoredPlan* got = cache.find(1, 2);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->fetch, PrefetchList{9});
  EXPECT_EQ(got->solver_nodes, 9u);
  // Key components are independent: neither half alone matches.
  EXPECT_EQ(cache.find(1, 3), nullptr);
  EXPECT_EQ(cache.find(2, 2), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(PlanCacheTest, LruEvictionBoundsSize) {
  PlanCache cache(0, 4);
  for (ItemId i = 0; i < 10; ++i) {
    *cache.insert(static_cast<std::uint64_t>(i), 0) = make_plan(i);
    EXPECT_LE(cache.size(), 4u);
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 6u);
  // The four most recent survive; the rest were evicted oldest-first.
  for (ItemId i = 0; i < 6; ++i) {
    EXPECT_EQ(cache.find(static_cast<std::uint64_t>(i), 0), nullptr) << i;
  }
  for (ItemId i = 6; i < 10; ++i) {
    EXPECT_NE(cache.find(static_cast<std::uint64_t>(i), 0), nullptr) << i;
  }
}

TEST(PlanCacheTest, FindRefreshesLruOrder) {
  PlanCache cache(0, 2);
  *cache.insert(1, 0) = make_plan(1);
  *cache.insert(2, 0) = make_plan(2);
  ASSERT_NE(cache.find(1, 0), nullptr);  // 1 becomes MRU
  *cache.insert(3, 0) = make_plan(3);     // evicts 2, not 1
  EXPECT_NE(cache.find(1, 0), nullptr);
  EXPECT_EQ(cache.find(2, 0), nullptr);
  EXPECT_NE(cache.find(3, 0), nullptr);
}

TEST(PlanCacheTest, GenerationHidesStaleEntries) {
  PlanCache cache(0, 8);
  *cache.insert(5, 5) = make_plan(5);
  ASSERT_NE(cache.find(5, 5), nullptr);
  cache.bump_generation();
  EXPECT_EQ(cache.find(5, 5), nullptr)
      << "a stale-generation plan must be unreachable";
  *cache.insert(5, 5) = make_plan(6);
  const StoredPlan* got = cache.find(5, 5);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->fetch, PrefetchList{6});
}

TEST(PlanCacheTest, InsertOverwritesExistingKey) {
  PlanCache cache(0, 4);
  *cache.insert(1, 1) = make_plan(1);
  *cache.insert(1, 1) = make_plan(2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find(1, 1)->fetch, PrefetchList{2});
}

TEST(PlanCacheStatsTest, MergeAndHitRate) {
  PlanCacheStats a{8, 2, 2, 1}, b{2, 8, 8, 0};
  a.merge(b);
  EXPECT_EQ(a.hits, 10u);
  EXPECT_EQ(a.misses, 10u);
  EXPECT_EQ(a.inserts, 10u);
  EXPECT_EQ(a.evictions, 1u);
  EXPECT_DOUBLE_EQ(a.hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(PlanCacheStats{}.hit_rate(), 0.0);
}

// ---- CanonicalOrderTable ------------------------------------------------

TEST(CanonicalOrderTableTest, RowMatchesCanonicalOrder) {
  Instance inst;
  inst.P = {0.0, 0.3, 0.1, 0.0, 0.25, 0.15};
  inst.r = {5, 3, 7, 2, 3, 7};
  inst.v = 10;
  const std::vector<ItemId> positive = {1, 2, 4, 5};
  CanonicalOrderTable table(3);
  const auto row = table.row(0, inst, positive);
  const auto expect = canonical_order(inst, positive);
  EXPECT_TRUE(std::equal(row.order.begin(), row.order.end(),
                         expect.begin(), expect.end()));
  // Suffix sums: Figure-3 tail sums with the trailing sentinel.
  ASSERT_EQ(row.suffix_prob.size(), row.order.size() + 1);
  EXPECT_DOUBLE_EQ(row.suffix_prob.back(), 0.0);
  for (std::size_t j = row.order.size(); j-- > 0;) {
    EXPECT_DOUBLE_EQ(row.suffix_prob[j],
                     row.suffix_prob[j + 1] +
                         inst.P[InstanceView::idx(row.order[j])]);
  }
}

TEST(CanonicalOrderTableTest, ZeroProbabilityEntriesSkipped) {
  Instance inst;
  inst.P = {0.5, 0.0, 0.5};
  inst.r = {1, 1, 1};
  inst.v = 2;
  CanonicalOrderTable table(1);
  const std::vector<ItemId> positive = {0, 1, 2};  // 1 has P == 0
  const auto row = table.row(0, inst, positive);
  EXPECT_EQ(std::vector<ItemId>(row.order.begin(), row.order.end()),
            (std::vector<ItemId>{0, 2}));
}

TEST(CanonicalOrderTableTest, RowsCachedUntilInvalidated) {
  Instance a;
  a.P = {0.6, 0.4};
  a.r = {2, 3};
  a.v = 4;
  Instance b = a;
  b.P = {0.1, 0.9};  // would reverse the order
  const std::vector<ItemId> positive = {0, 1};

  CanonicalOrderTable table(1);
  auto row = table.row(0, a, positive);
  EXPECT_EQ(row.order[0], 0);
  // Same generation: the cached row is served even for a different
  // instance (the caller's contract is that P is unchanged).
  row = table.row(0, b, positive);
  EXPECT_EQ(row.order[0], 0) << "row must be cached, not rebuilt";
  // After invalidation the row rebuilds against the new instance.
  table.invalidate_all();
  row = table.row(0, b, positive);
  EXPECT_EQ(row.order[0], 1);
}

// ---- Engine integration -------------------------------------------------

TEST(EngineConfigDigest, DistinguishesConfigs) {
  EngineConfig a;
  EXPECT_EQ(engine_config_digest(a), engine_config_digest(a));
  std::vector<EngineConfig> variants(5, a);
  variants[0].policy = PrefetchPolicy::KP;
  variants[1].delta_rule = DeltaRule::PaperTail;
  variants[2].arbitration.sub = SubArbitration::LFU;
  variants[3].arbitration.strict_ties = true;
  variants[4].min_profit_threshold = 2.0;
  std::set<std::uint64_t> digests{engine_config_digest(a)};
  for (const auto& v : variants) {
    EXPECT_TRUE(digests.insert(engine_config_digest(v)).second)
        << "digest collision between distinct configs";
  }
}

TEST(EnginePlanCached, HitReplaysThePlanBitForBit) {
  Instance inst;
  inst.P = {0.0, 0.3, 0.1, 0.0, 0.25, 0.15, 0.2};
  inst.r = {5, 3, 7, 2, 3, 7, 4};
  inst.v = 8;
  SlotCache cache(7, 3);
  cache.insert(0);
  cache.insert(3);
  cache.insert(6);
  FreqTracker freq(7);

  const PrefetchEngine engine(EngineConfig{});
  PlanCache plans(engine.config_digest(), 16);
  CanonicalOrderTable canon(1);
  const std::vector<ItemId> hint = {1, 2, 4, 5, 6};
  PlanMemo memo;
  memo.plans = &plans;
  memo.canon = &canon;

  PlanScratch scratch;
  PrefetchPlan uncached, first, second;
  engine.plan_with_cache(inst, cache, &freq, scratch, uncached);
  engine.plan_with_cache_cached(inst, cache, &freq, memo, scratch, first,
                                std::nullopt, hint);
  engine.plan_with_cache_cached(inst, cache, &freq, memo, scratch, second,
                                std::nullopt, hint);
  EXPECT_EQ(plans.stats().misses, 1u);
  EXPECT_EQ(plans.stats().hits, 1u);
  for (const PrefetchPlan* p : {&first, &second}) {
    EXPECT_EQ(p->fetch, uncached.fetch);
    EXPECT_EQ(p->evict, uncached.evict);
    EXPECT_DOUBLE_EQ(p->predicted_g, uncached.predicted_g);
    EXPECT_DOUBLE_EQ(p->stretch, uncached.stretch);
    EXPECT_EQ(p->solver_nodes, uncached.solver_nodes);
  }

  // Mutating the cache changes the fingerprint: the stale plan must not
  // be replayed against the new contents.
  cache.replace(0, 2);
  PrefetchPlan third, fresh;
  engine.plan_with_cache_cached(inst, cache, &freq, memo, scratch, third,
                                std::nullopt, hint);
  engine.plan_with_cache(inst, cache, &freq, scratch, fresh);
  EXPECT_EQ(plans.stats().misses, 2u);
  EXPECT_EQ(third.fetch, fresh.fetch);
  EXPECT_EQ(third.evict, fresh.evict);
}

TEST(EnginePlanCached, RejectsForeignConfigDigest) {
  Instance inst;
  inst.P = {0.5, 0.5};
  inst.r = {1, 2};
  inst.v = 2;
  SlotCache cache(2, 1);
  const PrefetchEngine engine(EngineConfig{});
  PlanCache foreign(engine.config_digest() ^ 1, 4);
  PlanMemo memo;
  memo.plans = &foreign;
  PlanScratch scratch;
  PrefetchPlan out;
  EXPECT_THROW(
      engine.plan_with_cache_cached(inst, cache, nullptr, memo, scratch,
                                    out),
      std::invalid_argument);
}

TEST(EnginePlanCached, SelectionTierSurvivesCacheChurn) {
  // The solver tier keys on the candidate SET (support \ cache), not the
  // full cache contents: caches {0, 6} and {3, 6} differ only in a
  // zero-probability item, so both leave candidates {1, 2, 4, 5}. The
  // completed-plan tier must miss twice (different fingerprints) while
  // the selection tier serves the second solve from the first — and the
  // admission stage still picks each cache's own victims.
  Instance inst;
  inst.P = {0.0, 0.3, 0.1, 0.0, 0.25, 0.15, 0.2};  // zero-P: items 0, 3
  inst.r = {5, 3, 7, 2, 3, 7, 4};
  inst.v = 8;
  FreqTracker freq(7);
  const PrefetchEngine engine(EngineConfig{});
  PlanCache plans(engine.config_digest(), 16);
  PlanCache selections(engine.config_digest(), 16);
  PlanMemo memo;
  memo.plans = &plans;
  memo.selections = &selections;

  SlotCache a(7, 2), b(7, 2);
  a.insert(0);
  a.insert(6);
  b.insert(3);
  b.insert(6);

  PlanScratch scratch;
  PrefetchPlan plan_a, plan_b, fresh_b;
  engine.plan_with_cache_cached(inst, a, &freq, memo, scratch, plan_a);
  engine.plan_with_cache_cached(inst, b, &freq, memo, scratch, plan_b);
  EXPECT_EQ(plans.stats().hits, 0u);
  EXPECT_EQ(plans.stats().misses, 2u);
  EXPECT_EQ(selections.stats().misses, 1u);
  EXPECT_EQ(selections.stats().hits, 1u);

  // The replayed selection must drive the exact plan a fresh solve
  // produces against cache b.
  engine.plan_with_cache(inst, b, &freq, scratch, fresh_b);
  EXPECT_EQ(plan_b.fetch, fresh_b.fetch);
  EXPECT_EQ(plan_b.evict, fresh_b.evict);
  EXPECT_DOUBLE_EQ(plan_b.predicted_g, fresh_b.predicted_g);
  EXPECT_EQ(plan_b.solver_nodes, fresh_b.solver_nodes);
  // Same selection, different victims: a evicts its zero-P item 0,
  // b evicts 3.
  EXPECT_EQ(plan_a.fetch, plan_b.fetch);
  if (!plan_a.evict.empty() && !plan_b.evict.empty()) {
    EXPECT_EQ(plan_a.evict.front(), 0);
    EXPECT_EQ(plan_b.evict.front(), 3);
  }
}

TEST(EnginePlanCached, NoneAndPerfectBypassTheCache) {
  Instance inst;
  inst.P = {0.5, 0.5};
  inst.r = {1, 2};
  inst.v = 2;
  SlotCache cache(2, 2);
  FreqTracker freq(2);
  PlanScratch scratch;
  PrefetchPlan out;
  for (const PrefetchPolicy policy :
       {PrefetchPolicy::None, PrefetchPolicy::Perfect}) {
    EngineConfig cfg;
    cfg.policy = policy;
    const PrefetchEngine engine(cfg);
    PlanCache plans(engine.config_digest(), 4);
    PlanMemo memo{&plans, nullptr, 0};
    engine.plan_with_cache_cached(inst, cache, &freq, memo, scratch, out,
                                  ItemId{1});
    EXPECT_EQ(plans.stats().lookups(), 0u) << to_string(policy);
    EXPECT_EQ(plans.size(), 0u) << to_string(policy);
  }
}

}  // namespace
}  // namespace skp
