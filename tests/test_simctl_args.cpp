// Tests for simctl's shared argument helpers (tools/simctl_args.hpp):
// the numeric-axis grammar — including the regression for the
// floating-point endpoint-skip bug — and the JSON spec-file lowering.
#include "simctl_args.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace skp::simctl {
namespace {

TEST(SimctlAxis, DecimalStepHitsInclusiveEndpoint) {
  // Regression: repeated `x += step` accumulation made 0:1:0.1 yield 10
  // points (1.0 skipped when the running sum landed at 1.0000000000000002
  // > hi + 1e-12). Index-based expansion with a half-step tolerance must
  // produce all 11.
  const auto axis = parse_numeric_axis("0:1:0.1", "--thresholds");
  ASSERT_EQ(axis.size(), 11u);
  for (std::size_t i = 0; i < axis.size(); ++i) {
    EXPECT_NEAR(axis[i], 0.1 * static_cast<double>(i), 1e-12) << i;
  }
  EXPECT_EQ(axis.back(), 1.0);  // exactly 10 * 0.1 in double — no drift
}

TEST(SimctlAxis, DecimalStepsDoNotAccumulateError) {
  // 0.1+0.1+... accumulates upward; lo + i*step stays within one
  // rounding of the exact grid even far from the origin.
  const auto axis = parse_numeric_axis("0:10:0.1", "--thresholds");
  ASSERT_EQ(axis.size(), 101u);
  for (std::size_t i = 0; i < axis.size(); ++i) {
    EXPECT_NEAR(axis[i], 0.1 * static_cast<double>(i), 1e-9) << i;
  }
  // The historical failure mode: value 30 * 0.1 printed as
  // 0.30000000000000004 under accumulation; multiplication rounds to the
  // nearest double of 3.0 exactly at this magnitude.
  EXPECT_EQ(axis[30], 30 * 0.1);  // one multiply's rounding, not a sum's
  EXPECT_EQ(axis[50], 5.0);
}

TEST(SimctlAxis, HalfStepEndpointTolerance) {
  // An off-grid HI snaps to the nearest grid point: 0.99 is ~2.48 steps
  // of 0.4 from 0, rounding down — the axis must not run past HI.
  const auto axis = parse_numeric_axis("0:0.99:0.4", "--x");
  ASSERT_EQ(axis.size(), 3u);  // 0, 0.4, 0.8
  EXPECT_NEAR(axis.back(), 0.8, 1e-12);
  // A HI within half a step ABOVE the grid keeps its endpoint even when
  // rounding pushes the computed value a hair past it.
  const auto above = parse_numeric_axis("0:1.1:0.4", "--x");
  ASSERT_EQ(above.size(), 4u);  // 0, 0.4, 0.8, ~1.2
  EXPECT_NEAR(above.back(), 1.2, 1e-12);
  // ...and a HI a hair BELOW the grid endpoint still includes it — the
  // failure mode the old accumulating loop hit on clean decimal inputs.
  const auto below = parse_numeric_axis("0:0.9999999:0.1", "--x");
  ASSERT_EQ(below.size(), 11u);
  // Exact half-step ties round DOWN: 1:10:2 is 4.5 steps and must stop
  // at 9, never sweep 11 past HI.
  const auto tie = parse_numeric_axis("1:10:2", "--x");
  ASSERT_EQ(tie.size(), 5u);
  EXPECT_EQ(tie.back(), 9.0);
  // Degenerate single-point range.
  const auto point = parse_numeric_axis("3:3:1", "--x");
  ASSERT_EQ(point.size(), 1u);
  EXPECT_EQ(point[0], 3.0);
}

TEST(SimctlAxis, ListsAndSingletonsAndErrors) {
  const auto axis = parse_numeric_axis("1,5,2:4:1", "--x");
  ASSERT_EQ(axis.size(), 5u);
  EXPECT_EQ(axis[0], 1.0);
  EXPECT_EQ(axis[1], 5.0);
  EXPECT_EQ(axis[2], 2.0);
  EXPECT_EQ(axis[4], 4.0);
  EXPECT_THROW(parse_numeric_axis("", "--x"), std::invalid_argument);
  EXPECT_THROW(parse_numeric_axis("1:0:1", "--x"), std::invalid_argument);
  EXPECT_THROW(parse_numeric_axis("0:1:0", "--x"), std::invalid_argument);
  EXPECT_THROW(parse_numeric_axis("1:2", "--x"), std::invalid_argument);
  EXPECT_THROW(parse_numeric_axis("abc", "--x"), std::invalid_argument);
}

TEST(SimctlAxis, IntegerAxisInclusiveAndWrapSafe) {
  const auto axis = parse_integer_axis("1:9:2", "--seeds");
  ASSERT_EQ(axis.size(), 5u);
  EXPECT_EQ(axis.back(), 9u);
  // Top-of-range step must not wrap around.
  const auto top = parse_integer_axis("18446744073709551613:"
                                      "18446744073709551615:2",
                                      "--seeds");
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top.back(), 18446744073709551615ULL);
  EXPECT_THROW(parse_integer_axis("-1", "--seeds"), std::invalid_argument);
  EXPECT_THROW(parse_integer_axis("1:2:0", "--seeds"),
               std::invalid_argument);
}

TEST(SimctlDouble, RejectsNonFiniteValues) {
  // Regression: std::stod happily parses "inf"/"nan" (any sign or case),
  // and a `--threshold inf` used to lower into a spec that ran a whole
  // sweep of garbage before any validator noticed.
  for (const char* bad : {"inf", "Inf", "INF", "+inf", "-inf", "infinity",
                          "nan", "NaN", "NAN", "-nan"}) {
    EXPECT_THROW(parse_double(bad, "--threshold"), std::invalid_argument)
        << bad;
  }
  EXPECT_EQ(parse_double("2.5", "--threshold"), 2.5);
  EXPECT_EQ(parse_double("-3", "--threshold"), -3.0);
  // ...and the axis grammar inherits the rejection.
  EXPECT_THROW(parse_numeric_axis("0.1,inf", "--thresholds"),
               std::invalid_argument);
  EXPECT_THROW(parse_numeric_axis("0:nan:1", "--thresholds"),
               std::invalid_argument);
}

TEST(SimctlLinkSchedule, ParsesPhaseTriples) {
  const auto sched = parse_link_schedule("200:1:0,50:0.25:2",
                                         "--link-phases");
  ASSERT_EQ(sched.size(), 2u);
  EXPECT_EQ(sched[0].duration, 200.0);
  EXPECT_EQ(sched[0].bandwidth, 1.0);
  EXPECT_EQ(sched[0].latency, 0.0);
  EXPECT_EQ(sched[1].duration, 50.0);
  EXPECT_EQ(sched[1].bandwidth, 0.25);
  EXPECT_EQ(sched[1].latency, 2.0);
}

TEST(SimctlLinkSchedule, RejectsMalformedPhases) {
  EXPECT_THROW(parse_link_schedule("", "--link-phases"),
               std::invalid_argument);
  EXPECT_THROW(parse_link_schedule("200:1", "--link-phases"),
               std::invalid_argument);
  EXPECT_THROW(parse_link_schedule("200:1:0:9", "--link-phases"),
               std::invalid_argument);
  EXPECT_THROW(parse_link_schedule("0:1:0", "--link-phases"),
               std::invalid_argument);  // zero duration
  EXPECT_THROW(parse_link_schedule("200:0:0", "--link-phases"),
               std::invalid_argument);  // zero bandwidth
  EXPECT_THROW(parse_link_schedule("200:1:-1", "--link-phases"),
               std::invalid_argument);  // negative latency
  EXPECT_THROW(parse_link_schedule("inf:1:0", "--link-phases"),
               std::invalid_argument);  // non-finite duration
}

TEST(SimctlSpecFile, LowersBaseAxesAndExecutionMembers) {
  const auto flags = spec_file_to_flags(R"({
    "base": {"driver": "netsim_des", "n_items": 24, "min_prob": 0.02,
             "no_plan_cache": true, "pr": false},
    "axes": {"predictors": ["oracle", "markov1"], "seeds": "1:3:1",
             "cache_sizes": [6, 12]},
    "shard": "0/2",
    "csv": "out.csv",
    "threads": 4
  })");
  const std::vector<std::string> expected = {
      "--driver",     "netsim_des",     "--n-items", "24",
      "--min-prob",   "0.02",           "--no-plan-cache",
      "--predictors", "oracle,markov1", "--seeds",   "1:3:1",
      "--cache-sizes", "6,12",          "--shard",   "0/2",
      "--csv",        "out.csv",        "--threads", "4"};
  EXPECT_EQ(flags, expected);
}

TEST(SimctlSpecFile, NumbersKeepLiteralText) {
  // Seeds above 2^53 must survive without a double round-trip.
  const auto flags = spec_file_to_flags(
      R"({"base": {"seed": 18446744073709551615}})");
  const std::vector<std::string> expected = {"--seed",
                                             "18446744073709551615"};
  EXPECT_EQ(flags, expected);
}

TEST(SimctlSpecFile, LowersHostileWorldMembers) {
  // The hostile-world spec fields lower to the flags of the same name —
  // one grammar for files and the command line.
  const auto flags = spec_file_to_flags(R"({
    "base": {"driver": "multi_client", "workload": "adversarial",
             "adv_hot_set": 8, "adv_escape": 0.02, "phase_align": 0.8,
             "churn_period": 300, "churn_downtime": 50,
             "link_phases": "200:1:0,50:0.25:2"},
    "axes": {"client_counts": [2, 3, 4], "link_speedups": [1, 2]}
  })");
  const std::vector<std::string> expected = {
      "--driver",        "multi_client",
      "--workload",      "adversarial",
      "--adv-hot-set",   "8",
      "--adv-escape",    "0.02",
      "--phase-align",   "0.8",
      "--churn-period",  "300",
      "--churn-downtime", "50",
      "--link-phases",   "200:1:0,50:0.25:2",
      "--client-counts", "2,3,4",
      "--link-speedups", "1,2"};
  EXPECT_EQ(flags, expected);
}

TEST(SimctlSpecFile, LowersMixedPredictorFleets) {
  // A per-client predictor list ("inherit" keeps the base choice)
  // lowers to --client-predictors, which simctl validates against
  // --clients and installs as multi_client overrides.
  const auto flags = spec_file_to_flags(R"({
    "base": {"driver": "multi_client", "clients": 3,
             "client_predictors": ["ppm", "lz78", "inherit"]}
  })");
  const std::vector<std::string> expected = {
      "--driver",            "multi_client",
      "--clients",           "3",
      "--client-predictors", "ppm,lz78,inherit"};
  EXPECT_EQ(flags, expected);
}

TEST(SimctlSpecFile, RejectsBadDocuments) {
  EXPECT_THROW(spec_file_to_flags("[1]"), std::invalid_argument);
  EXPECT_THROW(spec_file_to_flags(R"({"bogus": {}})"),
               std::invalid_argument);
  EXPECT_THROW(spec_file_to_flags(R"({"base": 7})"),
               std::invalid_argument);
  EXPECT_THROW(spec_file_to_flags(R"({"axes": {"seeds": []}})"),
               std::invalid_argument);
  EXPECT_THROW(spec_file_to_flags(R"({"base": {"requests": {}}})"),
               std::invalid_argument);
  EXPECT_THROW(spec_file_to_flags(R"({"shard": 2})"),
               std::invalid_argument);
}

}  // namespace
}  // namespace skp::simctl
