#include "cache/cache.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace skp {
namespace {

TEST(SlotCache, ConstructionValidation) {
  EXPECT_THROW(SlotCache(0, 1), std::invalid_argument);
  EXPECT_THROW(SlotCache(10, 0), std::invalid_argument);
  EXPECT_NO_THROW(SlotCache(10, 1));
}

TEST(SlotCache, InsertAndContains) {
  SlotCache c(10, 3);
  EXPECT_TRUE(c.empty());
  c.insert(4);
  EXPECT_TRUE(c.contains(4));
  EXPECT_FALSE(c.contains(5));
  EXPECT_EQ(c.size(), 1u);
}

TEST(SlotCache, DuplicateInsertThrows) {
  SlotCache c(10, 3);
  c.insert(1);
  EXPECT_THROW(c.insert(1), std::invalid_argument);
}

TEST(SlotCache, InsertWhenFullThrows) {
  SlotCache c(10, 2);
  c.insert(1);
  c.insert(2);
  EXPECT_TRUE(c.full());
  EXPECT_THROW(c.insert(3), std::invalid_argument);
}

TEST(SlotCache, OutOfCatalogThrows) {
  SlotCache c(5, 2);
  EXPECT_THROW(c.insert(5), std::invalid_argument);
  EXPECT_THROW(c.insert(-1), std::invalid_argument);
  EXPECT_THROW(c.contains(7), std::invalid_argument);
}

TEST(SlotCache, EraseRemoves) {
  SlotCache c(10, 3);
  c.insert(1);
  c.insert(2);
  c.erase(1);
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.size(), 1u);
}

TEST(SlotCache, EraseAbsentThrows) {
  SlotCache c(10, 3);
  EXPECT_THROW(c.erase(1), std::invalid_argument);
}

TEST(SlotCache, ReplaceSwapsAtomically) {
  SlotCache c(10, 1);
  c.insert(1);
  c.replace(1, 2);
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_EQ(c.size(), 1u);
}

TEST(SlotCache, ContentsPreserveInsertionOrder) {
  SlotCache c(10, 4);
  c.insert(3);
  c.insert(1);
  c.insert(7);
  const auto contents = c.contents();
  ASSERT_EQ(contents.size(), 3u);
  EXPECT_EQ(contents[0], 3);
  EXPECT_EQ(contents[1], 1);
  EXPECT_EQ(contents[2], 7);
}

TEST(SlotCache, EraseKeepsSurvivorOrder) {
  SlotCache c(10, 4);
  c.insert(3);
  c.insert(1);
  c.insert(7);
  c.erase(1);
  const auto contents = c.contents();
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents[0], 3);
  EXPECT_EQ(contents[1], 7);
}

TEST(SlotCache, ClearEmpties) {
  SlotCache c(10, 3);
  c.insert(1);
  c.insert(2);
  c.clear();
  EXPECT_TRUE(c.empty());
  EXPECT_FALSE(c.contains(1));
  c.insert(1);  // reusable after clear
  EXPECT_TRUE(c.contains(1));
}

TEST(SlotCache, FillToCapacity) {
  SlotCache c(100, 100);
  for (ItemId i = 0; i < 100; ++i) c.insert(i);
  EXPECT_TRUE(c.full());
  for (ItemId i = 0; i < 100; ++i) EXPECT_TRUE(c.contains(i));
}

}  // namespace
}  // namespace skp
