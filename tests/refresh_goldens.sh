#!/usr/bin/env bash
# Regenerates the scenario-matrix golden table (DISABLED_PrintGoldenTable)
# and diffs it against the kGolden rows committed in
# tests/test_scenario_matrix.cpp — the manual workflow the file header
# documents, scripted (ROADMAP "Golden-file refresh workflow").
#
# Usage:
#   tests/refresh_goldens.sh [--apply] [BUILD_DIR]
#
#   (no flag)   print a unified diff; exit 0 when the committed goldens
#               are current, 1 when they drifted (CI-friendly)
#   --apply     additionally splice the regenerated rows into the source
#               file in place
#
# BUILD_DIR defaults to "build" (must contain tests/test_scenario_matrix).
set -euo pipefail

apply=0
if [[ "${1:-}" == "--apply" ]]; then
  apply=1
  shift
fi
build_dir="${1:-build}"

root="$(cd "$(dirname "$0")/.." && pwd)"
bin="$root/$build_dir/tests/test_scenario_matrix"
src="$root/tests/test_scenario_matrix.cpp"

# Distinguish "never configured" from "configured but not built" so the
# failure mode is never a bare pipeline abort under `set -o pipefail`.
if [[ ! -d "$root/$build_dir" ]]; then
  echo "error: build dir '$root/$build_dir' does not exist — configure and build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 2
fi
if [[ ! -x "$bin" ]]; then
  echo "error: $bin not found — build the test_scenario_matrix target:" >&2
  echo "  cmake --build $build_dir -j --target test_scenario_matrix" >&2
  exit 2
fi

tmp_new="$(mktemp)"
tmp_old="$(mktemp)"
trap 'rm -f "$tmp_new" "$tmp_old"' EXIT

# The disabled test prints exactly the initializer rows (two lines per
# row, first starting with "    {PredictorKind::"). Capture the run
# separately from the row filter: a crashing binary must surface its
# output, not die silently inside the pipeline.
if ! table_out="$("$bin" --gtest_also_run_disabled_tests \
                        --gtest_filter='*PrintGoldenTable*' 2>&1)"; then
  echo "error: PrintGoldenTable run failed; output was:" >&2
  printf '%s\n' "$table_out" >&2
  exit 2
fi
printf '%s\n' "$table_out" |
  grep -E '^\s+\{PredictorKind::|^\s+ScenarioWorkload::' > "$tmp_new" || true

if [[ ! -s "$tmp_new" ]]; then
  echo "error: PrintGoldenTable produced no rows; output was:" >&2
  printf '%s\n' "$table_out" >&2
  exit 2
fi

# Extract the committed rows: everything between the kGolden opening brace
# and the closing "};", minus the clang-format guard comments.
sed -n '/^const std::vector<GoldenRow> kGolden = {$/,/^};$/p' "$src" |
  grep -E '^\s+\{PredictorKind::|^\s+ScenarioWorkload::' > "$tmp_old"

if diff -u "$tmp_old" "$tmp_new" > /dev/null; then
  echo "goldens are current ($(grep -c 'PredictorKind' "$tmp_new") rows)"
  exit 0
fi

echo "golden table drifted:"
diff -u --label committed "$tmp_old" --label regenerated "$tmp_new" || true

if [[ "$apply" == 1 ]]; then
  python3 - "$src" "$tmp_new" <<'EOF'
import re
import sys

src_path, rows_path = sys.argv[1], sys.argv[2]
with open(rows_path) as f:
    rows = f.read().rstrip("\n")
with open(src_path) as f:
    src = f.read()

pattern = re.compile(
    r"(const std::vector<GoldenRow> kGolden = \{\n"
    r"    // clang-format off\n)(.*?)(\n    // clang-format on\n\};)",
    re.S)
new_src, n = pattern.subn(lambda m: m.group(1) + rows + m.group(3), src)
if n != 1:
    sys.exit("error: kGolden block not found in " + src_path)
with open(src_path, "w") as f:
    f.write(new_src)
print(f"updated {src_path}")
EOF
  echo "re-run the suite to confirm: ctest --test-dir build -R Scenario"
  exit 0
fi

echo
echo "run with --apply to splice the regenerated rows into $src"
exit 1
