// SessionShard / ShardedSessionStore contract tests, and the headline
// concurrency property of the million-session refactor: stepping N
// sessions from a thread pool — one worker per shard, shards touched
// only by their owner — produces bit-identical snapshot sequences to
// stepping each session alone. Read-mostly shared state (SharedCatalog)
// is the only thing the sessions have in common, so any hidden write
// through it shows up here (and as a data race under the tsan CI job).
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "sim/catalog.hpp"
#include "sim/netsim_stepper.hpp"
#include "sim/runtime.hpp"
#include "sim/session_store.hpp"
#include "util/thread_pool.hpp"

namespace skp {
namespace {

struct Counter {
  explicit Counter(int v = 0) : value(v) {}
  int value;
};

TEST(SessionShard, InsertFindEraseAndOrderedVisit) {
  SessionShard<Counter> shard;
  shard.emplace(30, 3);
  shard.emplace(10, 1);
  shard.insert(20, std::make_unique<Counter>(2));
  EXPECT_EQ(shard.size(), 3u);
  ASSERT_NE(shard.find(20), nullptr);
  EXPECT_EQ(shard.find(20)->value, 2);
  EXPECT_EQ(shard.find(99), nullptr);

  std::vector<std::uint64_t> order;
  shard.for_each([&](std::uint64_t id, Counter&) { order.push_back(id); });
  EXPECT_EQ(order, (std::vector<std::uint64_t>{10, 20, 30}));

  EXPECT_TRUE(shard.erase(20));
  EXPECT_FALSE(shard.erase(20));
  EXPECT_EQ(shard.find(20), nullptr);
  EXPECT_EQ(shard.size(), 2u);

  // Duplicate ids and null sessions are contract violations.
  EXPECT_THROW(shard.emplace(10, 0), std::invalid_argument);
  EXPECT_THROW(shard.insert(77, nullptr), std::invalid_argument);
}

TEST(SessionShard, SessionAddressesStableAcrossInserts) {
  SessionShard<Counter> shard;
  Counter& first = shard.emplace(1, 41);
  for (std::uint64_t id = 2; id <= 500; ++id) shard.emplace(id, 0);
  // std::map rebalancing must never move the owned session object.
  EXPECT_EQ(&first, shard.find(1));
  EXPECT_EQ(first.value, 41);
}

TEST(ShardedSessionStore, RoutesByModuloAndSumsSizes) {
  ShardedSessionStore<Counter> store(4);
  EXPECT_EQ(store.n_shards(), 4u);
  for (std::uint64_t id = 1; id <= 40; ++id) store.emplace(id, 0);
  EXPECT_EQ(store.size(), 40u);
  for (std::uint64_t id = 1; id <= 40; ++id) {
    EXPECT_EQ(store.shard_of(id), id % 4);
    ASSERT_NE(store.find(id), nullptr);
    // The owning shard holds it; the others must not.
    for (std::size_t s = 0; s < 4; ++s) {
      EXPECT_EQ(store.shard(s).find(id) != nullptr, s == id % 4);
    }
  }
  EXPECT_TRUE(store.erase(7));
  EXPECT_EQ(store.find(7), nullptr);
  EXPECT_EQ(store.size(), 39u);
}

TEST(ShardedSessionStore, OrderedVisitIsShardCountIndependent) {
  // The drain order contract: for_each_ordered yields ascending ids no
  // matter how the ids scatter over shards.
  for (const std::size_t n_shards : {1u, 2u, 3u, 7u, 16u}) {
    ShardedSessionStore<Counter> store(n_shards);
    for (std::uint64_t id = 100; id >= 1; --id) store.emplace(id, 0);
    std::vector<std::uint64_t> order;
    store.for_each_ordered(
        [&](std::uint64_t id, Counter&) { order.push_back(id); });
    ASSERT_EQ(order.size(), 100u);
    for (std::size_t i = 0; i < order.size(); ++i) {
      ASSERT_EQ(order[i], i + 1) << "n_shards=" << n_shards;
    }
  }
}

TEST(RecommendedShardCount, NeverExceedsSessionsAndIsPositive) {
  EXPECT_EQ(recommended_shard_count(0), 1u);
  EXPECT_EQ(recommended_shard_count(1), 1u);
  const std::size_t many = recommended_shard_count(1'000'000);
  EXPECT_GE(many, 1u);
  EXPECT_LE(many, 1'000'000u);
}

// ---------------------------------------------------------------------
// Concurrency bit-identity.

SimSpec stepper_spec(std::uint64_t seed, PredictorKind predictor) {
  SimSpec spec;
  spec.driver = SimDriverKind::NetsimDes;
  spec.workload.kind = SimWorkloadKind::Markov;
  spec.workload.n_items = 30;
  spec.predictor = predictor;
  spec.cache_size = 6;
  spec.requests = 120;
  spec.seed = seed;
  return spec;
}

struct StepperSession {
  StepperSession(const SimSpec& spec,
                 std::shared_ptr<const SharedCatalog> catalog)
      : stepper(spec, std::move(catalog)) {}
  NetsimStepper stepper;
  std::vector<NetsimStepSnapshot> got;
};

TEST(ShardedSessionStore, ParallelShardSteppingBitIdenticalToSolo) {
  // Two spec groups (oracle sharing a master chain, learned sharing a
  // materialized script) interleaved over the id space, M sessions per
  // group, stepped to completion by one worker per shard. Every session
  // must reproduce its group's solo snapshot sequence exactly.
  const SimSpec spec_a = stepper_spec(11, PredictorKind::Oracle);
  const SimSpec spec_b = stepper_spec(12, PredictorKind::Lz78);

  auto solo_run = [](const SimSpec& spec) {
    NetsimStepper stepper(spec);
    std::vector<NetsimStepSnapshot> snaps;
    while (!stepper.done()) snaps.push_back(stepper.step());
    return snaps;
  };
  const std::vector<NetsimStepSnapshot> want_a = solo_run(spec_a);
  const std::vector<NetsimStepSnapshot> want_b = solo_run(spec_b);

  const std::shared_ptr<const SharedCatalog> cat_a =
      SharedCatalog::acquire(spec_a);
  const std::shared_ptr<const SharedCatalog> cat_b =
      SharedCatalog::acquire(spec_b);

  constexpr std::size_t kShards = 4;
  constexpr std::uint64_t kSessions = 32;
  ShardedSessionStore<StepperSession> store(kShards);
  for (std::uint64_t id = 0; id < kSessions; ++id) {
    const bool group_a = id % 2 == 0;
    store.emplace(id, group_a ? spec_a : spec_b,
                  group_a ? cat_a : cat_b);
  }

  // One worker per shard; each worker round-robins its own sessions one
  // step at a time, maximizing interleaving against the shared catalog.
  ThreadPool pool(kShards);
  std::vector<std::future<void>> done;
  for (std::size_t s = 0; s < kShards; ++s) {
    done.push_back(pool.submit([&store, s] {
      bool any = true;
      while (any) {
        any = false;
        store.shard(s).for_each([&](std::uint64_t, StepperSession& ss) {
          if (!ss.stepper.done()) {
            ss.got.push_back(ss.stepper.step());
            any = true;
          }
        });
      }
    }));
  }
  for (auto& f : done) f.get();  // rethrows worker exceptions

  std::size_t visited = 0;
  store.for_each_ordered([&](std::uint64_t id, StepperSession& ss) {
    const auto& want = id % 2 == 0 ? want_a : want_b;
    ASSERT_EQ(ss.got.size(), want.size()) << "session " << id;
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(ss.got[i], want[i]) << "session " << id << " step " << i;
    }
    ++visited;
  });
  EXPECT_EQ(visited, kSessions);
}

TEST(SharedCatalog, InternsOneGroupPerSpec) {
  const SimSpec spec_a = stepper_spec(21, PredictorKind::Lz78);
  const SimSpec spec_b = stepper_spec(22, PredictorKind::Lz78);
  const std::size_t before = SharedCatalog::interned_groups();

  const auto cat_a1 = SharedCatalog::acquire(spec_a);
  const auto cat_a2 = SharedCatalog::acquire(spec_a);
  const auto cat_b = SharedCatalog::acquire(spec_b);
  EXPECT_EQ(cat_a1.get(), cat_a2.get());  // same group, same object
  EXPECT_NE(cat_a1.get(), cat_b.get());
  EXPECT_EQ(SharedCatalog::interned_groups(), before + 2);

  // A learned-predictor swap does not split a group: the grounding
  // depends on the workload/seed/link, not on who predicts over it.
  // (Oracle mode IS keyed separately — it grounds a master chain
  // instead of a materialized script.)
  const auto cat_a3 =
      SharedCatalog::acquire(stepper_spec(21, PredictorKind::Ppm));
  EXPECT_EQ(cat_a1.get(), cat_a3.get());
}

}  // namespace
}  // namespace skp
