// End-to-end shape checks across modules: the qualitative claims of the
// paper's evaluation, reproduced at reduced scale so the full suite stays
// fast. The full-scale reproductions live in bench/.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/access_model.hpp"
#include "core/brute_force.hpp"
#include "sim/netsim.hpp"
#include "sim/prefetch_cache.hpp"
#include "sim/prefetch_only.hpp"

namespace skp {
namespace {

TEST(Integration, Fig5OrderingSkewySmallScale) {
  // perfect <= SKP < none, KP < none under the skewy method (Fig. 5a).
  PrefetchOnlyConfig base;
  base.iterations = 12000;
  base.seed = 42;
  base.method = ProbMethod::Skewy;
  auto run = [&](PrefetchPolicy p) {
    auto cfg = base;
    cfg.policy = p;
    return run_prefetch_only(cfg).metrics.mean_access_time();
  };
  const double perfect = run(PrefetchPolicy::Perfect);
  const double skp = run(PrefetchPolicy::SKP);
  const double kp = run(PrefetchPolicy::KP);
  const double none = run(PrefetchPolicy::None);
  EXPECT_LE(perfect, skp);
  EXPECT_LT(skp, none);
  EXPECT_LT(kp, none);
}

TEST(Integration, Fig5SmallVAnomalyIsTheDeltaRule) {
  // Fig. 5a: "The exception is when v is small where the SKP prefetch
  // performs worse than no prefetch." Reproduction finding (DESIGN.md D1):
  // the anomaly is an artifact of the Figure-3 tail-sum delta — under it,
  // overestimated g triggers losing stretches at tiny v; the corrected
  // complement rule never loses to no-prefetch in expectation (it only
  // prefetches when the true expected improvement is positive).
  auto run = [](PrefetchPolicy pol, DeltaRule rule) {
    PrefetchOnlyConfig cfg;
    cfg.iterations = 120000;
    cfg.seed = 5;
    cfg.method = ProbMethod::Skewy;
    cfg.policy = pol;
    cfg.delta_rule = rule;
    return run_prefetch_only(cfg);
  };
  const auto tail = run(PrefetchPolicy::SKP, DeltaRule::PaperTail);
  const auto exact = run(PrefetchPolicy::SKP, DeltaRule::ExactComplement);
  const auto none = run(PrefetchPolicy::None, DeltaRule::ExactComplement);

  auto mean_over = [](const BinnedMeans& bm, int lo, int hi) {
    OnlineStats s;
    for (int v = lo; v <= hi; ++v) s.merge(bm.bin(v));
    return s.mean();
  };
  // Paper-faithful rule reproduces the paper's small-v exception ...
  EXPECT_GT(mean_over(tail.avg_T_by_v, 1, 3),
            mean_over(none.avg_T_by_v, 1, 3) + 2.0);
  // ... the corrected rule removes it ...
  EXPECT_LE(mean_over(exact.avg_T_by_v, 1, 3),
            mean_over(none.avg_T_by_v, 1, 3) + 0.5);
  // ... and both beat no-prefetch handily at moderate v.
  EXPECT_LT(mean_over(tail.avg_T_by_v, 30, 50),
            mean_over(none.avg_T_by_v, 30, 50));
  EXPECT_LT(mean_over(exact.avg_T_by_v, 30, 50),
            mean_over(none.avg_T_by_v, 30, 50));
}

TEST(Integration, Fig7PolicyOrderingSmallScale) {
  PrefetchCacheConfig base;
  base.source.n_states = 40;
  base.source.out_degree_lo = 5;
  base.source.out_degree_hi = 10;
  base.cache_size = 8;
  base.requests = 6000;
  base.seed = 9;
  auto run = [&](PrefetchPolicy p, SubArbitration sub) {
    auto cfg = base;
    cfg.policy = p;
    cfg.sub = sub;
    return run_prefetch_cache(cfg).metrics.mean_access_time();
  };
  const double none = run(PrefetchPolicy::None, SubArbitration::None);
  const double kp = run(PrefetchPolicy::KP, SubArbitration::None);
  const double skp = run(PrefetchPolicy::SKP, SubArbitration::None);
  // Fig. 7 ordering: prefetching beats not prefetching; SKP at least
  // matches KP (they coincide within noise on some workloads).
  EXPECT_LT(kp, none);
  EXPECT_LT(skp, none);
  EXPECT_LE(skp, kp + 0.3);
}

TEST(Integration, CacheSizeSweepMonotoneTrend) {
  // Fig. 7 x-axis: access time decreases (weakly, within noise) as the
  // cache grows. Compare the two endpoints with a healthy margin.
  PrefetchCacheConfig base;
  base.source.n_states = 40;
  base.source.out_degree_lo = 5;
  base.source.out_degree_hi = 10;
  base.requests = 4000;
  base.seed = 10;
  base.policy = PrefetchPolicy::SKP;
  auto at_size = [&](std::size_t s) {
    auto cfg = base;
    cfg.cache_size = s;
    return run_prefetch_cache(cfg).metrics.mean_access_time();
  };
  EXPECT_GT(at_size(1), at_size(36));
}

TEST(Integration, DesAndAnalyticModelAgreeOnMarkovWorkload) {
  // Drive the DES client with a Markov source; with unit bandwidth and
  // zero latency, per-cycle access times must match the analytic
  // realized_access_time whenever the link is idle at cycle start (no
  // stretch carryover). We force idleness by flushing viewing times long
  // enough to drain the link: v >= sum r is enough.
  Rng build(12);
  MarkovSourceConfig mcfg;
  mcfg.n_states = 12;
  mcfg.out_degree_lo = 3;
  mcfg.out_degree_hi = 5;
  mcfg.v_lo = 400.0;  // longer than any plan's total retrieval time
  mcfg.v_hi = 500.0;
  MarkovSource src(mcfg, build);
  src.teleport(0);

  ServerCatalog cat{
      std::vector<double>(src.retrieval_times().begin(),
                          src.retrieval_times().end())};
  EngineConfig ecfg;
  ecfg.policy = PrefetchPolicy::SKP;
  ClientSession session(cat, NetConfig{}, ecfg, mcfg.n_states);

  // A parallel "analytic" tracker replays the same plans.
  SlotCache shadow_cache(mcfg.n_states, mcfg.n_states);
  FreqTracker shadow_freq(mcfg.n_states);
  const PrefetchEngine shadow_engine(ecfg);

  Rng walk(13);
  for (int step = 0; step < 60; ++step) {
    const std::size_t s = src.current_state();
    const Instance inst = src.instance_at(s);
    const auto next = static_cast<ItemId>(src.step(walk));

    const auto cache_before = std::vector<ItemId>(
        shadow_cache.contents().begin(), shadow_cache.contents().end());
    const auto plan =
        shadow_engine.plan_with_cache(inst, shadow_cache, &shadow_freq);
    for (ItemId f : plan.fetch) shadow_cache.insert(f);
    const double T_model = realized_access_time_cached(
        inst, plan.fetch, plan.evict, cache_before, next);

    const double T_des = session.request(next, inst.v, inst.P);
    EXPECT_NEAR(T_des, T_model, 1e-9) << "step " << step;

    shadow_freq.record(next);
    if (!shadow_cache.contains(next)) shadow_cache.insert(next);
  }
}

TEST(Integration, SolverScalesToFig7CandidateSizes) {
  // The Fig. 7 planner solves SKPs over <= 20 successors; confirm the
  // search stays tiny (paper: "theoretically proven apparatus to reduce
  // the search space").
  Rng rng(14);
  MarkovSourceConfig mcfg;  // paper defaults: 100 states, 10-20 successors
  MarkovSource src(mcfg, rng);
  std::uint64_t worst_nodes = 0;
  for (std::size_t s = 0; s < src.n_states(); ++s) {
    const Instance inst = src.instance_at(s);
    std::vector<ItemId> cand(src.successors(s).begin(),
                             src.successors(s).end());
    const auto sol = solve_skp(inst, cand);
    worst_nodes = std::max(worst_nodes, sol.forward_steps);
  }
  EXPECT_LT(worst_nodes, 5000u);
}

TEST(Integration, BruteForceValidatesSolverOnMarkovRows) {
  // Fig. 7-style instances (sparse rows) hit the sub-unit-mass path; the
  // solver must still match exhaustive search over the successor set.
  Rng rng(15);
  MarkovSourceConfig mcfg;
  mcfg.n_states = 25;
  mcfg.out_degree_lo = 4;
  mcfg.out_degree_hi = 9;
  MarkovSource src(mcfg, rng);
  for (std::size_t s = 0; s < src.n_states(); ++s) {
    const Instance inst = src.instance_at(s);
    std::vector<ItemId> cand(src.successors(s).begin(),
                             src.successors(s).end());
    const auto sol = solve_skp(inst, cand);
    const auto bf = brute_force_skp_canonical(inst, cand);
    EXPECT_NEAR(sol.g, bf.g, 1e-9) << "state " << s;
  }
}

}  // namespace
}  // namespace skp
