#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "predict/dependency_graph.hpp"
#include "predict/markov_predictor.hpp"
#include "predict/ppm_predictor.hpp"
#include "workload/markov_source.hpp"

namespace skp {
namespace {

double sum(const std::vector<double>& p) {
  double s = 0;
  for (double x : p) s += x;
  return s;
}

// All predictors must emit proper distributions at every point of a random
// observation stream.
template <typename P>
void check_distribution_invariant(P& pred, std::size_t n) {
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const auto p = pred.predict();
    EXPECT_EQ(p.size(), n);
    EXPECT_NEAR(sum(p), 1.0, 1e-9);
    for (double x : p) EXPECT_GE(x, 0.0);
    pred.observe(static_cast<ItemId>(rng.next_below(n)));
  }
}

TEST(MarkovPredictor, DistributionInvariant) {
  MarkovPredictor pred(8);
  check_distribution_invariant(pred, 8);
}

TEST(PpmPredictor, DistributionInvariant) {
  PpmPredictor pred(8, 3);
  check_distribution_invariant(pred, 8);
}

TEST(DependencyGraph, DistributionInvariant) {
  DependencyGraph pred(8, 3);
  check_distribution_invariant(pred, 8);
}

TEST(MarkovPredictor, ConstructionValidation) {
  EXPECT_THROW(MarkovPredictor(0), std::invalid_argument);
  EXPECT_THROW(MarkovPredictor(4, 0.0), std::invalid_argument);
}

TEST(MarkovPredictor, LearnsDeterministicChain) {
  // 0 -> 1 -> 2 -> 0 -> ...: after training, P(next | last) concentrates.
  MarkovPredictor pred(3, 0.01);
  for (int rep = 0; rep < 100; ++rep) {
    pred.observe(0);
    pred.observe(1);
    pred.observe(2);
  }
  pred.observe(0);
  const auto p = pred.predict();
  EXPECT_GT(p[1], 0.9);
}

TEST(MarkovPredictor, CountsExposed) {
  MarkovPredictor pred(3);
  pred.observe(0);
  pred.observe(1);
  pred.observe(0);
  EXPECT_EQ(pred.count(0, 1), 1u);
  EXPECT_EQ(pred.count(1, 0), 1u);
  EXPECT_EQ(pred.count(2, 0), 0u);
  EXPECT_EQ(pred.last_item(), 0);
}

TEST(MarkovPredictor, NoContextFallsBackToMarginal) {
  MarkovPredictor pred(4);
  const auto p = pred.predict();  // nothing observed: uniform smoothing
  for (double x : p) EXPECT_NEAR(x, 0.25, 1e-9);
}

TEST(MarkovPredictor, ResetForgets) {
  MarkovPredictor pred(3);
  pred.observe(0);
  pred.observe(1);
  pred.reset();
  EXPECT_EQ(pred.count(0, 1), 0u);
  EXPECT_EQ(pred.last_item(), kNoItem);
}

TEST(MarkovPredictor, OutOfRangeObservationThrows) {
  MarkovPredictor pred(3);
  EXPECT_THROW(pred.observe(3), std::invalid_argument);
  EXPECT_THROW(pred.observe(-1), std::invalid_argument);
}

TEST(PpmPredictor, ConstructionValidation) {
  EXPECT_THROW(PpmPredictor(0), std::invalid_argument);
  EXPECT_THROW(PpmPredictor(4, 0), std::invalid_argument);
  EXPECT_THROW(PpmPredictor(4, 9), std::invalid_argument);
}

TEST(PpmPredictor, LearnsOrder2Pattern) {
  // Sequence alternates blocks: after (0,1) comes 2; after (2,1) comes 0.
  // An order-2 model separates them; order-1 cannot.
  PpmPredictor pred(3, 2);
  for (int rep = 0; rep < 200; ++rep) {
    pred.observe(0);
    pred.observe(1);
    pred.observe(2);
    pred.observe(1);
  }
  // History now ends ...2, 1 -> expect 0 next (cycle restarts).
  const auto p = pred.predict();
  EXPECT_GT(p[0], 0.6);
}

TEST(PpmPredictor, EscapesToLowerOrderOnNovelContext) {
  PpmPredictor pred(4, 2);
  for (int rep = 0; rep < 50; ++rep) {
    pred.observe(0);
    pred.observe(1);
  }
  pred.observe(3);  // novel context (1, 3): order-2 unseen
  const auto p = pred.predict();
  EXPECT_NEAR(sum(p), 1.0, 1e-9);  // still a proper distribution
}

TEST(PpmPredictor, ResetForgets) {
  PpmPredictor pred(3, 2);
  for (int i = 0; i < 30; ++i) pred.observe(i % 3);
  pred.reset();
  const auto p = pred.predict();
  for (double x : p) EXPECT_NEAR(x, 1.0 / 3.0, 1e-9);
}

TEST(DependencyGraph, ConstructionValidation) {
  EXPECT_THROW(DependencyGraph(0), std::invalid_argument);
  EXPECT_THROW(DependencyGraph(4, 0), std::invalid_argument);
}

TEST(DependencyGraph, ArcsCountWindowCooccurrence) {
  DependencyGraph dg(4, 2);
  dg.observe(0);
  dg.observe(1);  // window {0}: arc 0->1
  dg.observe(2);  // window {0,1}: arcs 0->2, 1->2
  EXPECT_EQ(dg.arc(0, 1), 1u);
  EXPECT_EQ(dg.arc(0, 2), 1u);
  EXPECT_EQ(dg.arc(1, 2), 1u);
  EXPECT_EQ(dg.arc(2, 0), 0u);
}

TEST(DependencyGraph, Window1IsFirstOrderMarkov) {
  DependencyGraph dg(3, 1);
  dg.observe(0);
  dg.observe(1);
  dg.observe(0);
  dg.observe(1);
  EXPECT_EQ(dg.arc(0, 1), 2u);
  EXPECT_EQ(dg.arc(1, 0), 1u);
}

TEST(DependencyGraph, PredictNormalizesOutArcs) {
  DependencyGraph dg(3, 1);
  for (int i = 0; i < 3; ++i) {
    dg.observe(0);
    dg.observe(1);
    dg.observe(0);
    dg.observe(2);
  }
  dg.observe(0);
  const auto p = dg.predict();
  EXPECT_NEAR(sum(p), 1.0, 1e-9);
  EXPECT_GT(p[1], 0.0);
  EXPECT_GT(p[2], 0.0);
  EXPECT_DOUBLE_EQ(p[0], 0.0);  // no self arcs observed
}

TEST(DependencyGraph, ColdStartIsUniform) {
  DependencyGraph dg(5, 2);
  const auto p = dg.predict();
  for (double x : p) EXPECT_NEAR(x, 0.2, 1e-9);
}

TEST(DependencyGraph, ArcProbabilityNormalizedByAccesses) {
  DependencyGraph dg(3, 1);
  dg.observe(0);
  dg.observe(1);
  dg.observe(0);
  dg.observe(2);
  // Item 0 accessed twice; arc 0->1 observed once.
  EXPECT_DOUBLE_EQ(dg.arc_probability(0, 1), 0.5);
}

TEST(Predictors, MarkovBeatsUniformOnMarkovSource) {
  // On the Fig. 7 workload, a learned first-order model should assign the
  // realized next item more mass than the uniform baseline on average.
  Rng build(5);
  MarkovSourceConfig cfg;
  cfg.n_states = 20;
  cfg.out_degree_lo = 3;
  cfg.out_degree_hi = 5;
  MarkovSource src(cfg, build);
  MarkovPredictor pred(cfg.n_states, 0.01);
  Rng walk(6);
  src.teleport(0);
  pred.observe(0);
  double mass_on_realized = 0;
  const int steps = 5000;
  // Warm up the predictor on the first half.
  for (int i = 0; i < steps; ++i) {
    const auto next = static_cast<ItemId>(src.step(walk));
    if (i > steps / 2) {
      mass_on_realized += pred.predict()[static_cast<std::size_t>(next)];
    }
    pred.observe(next);
  }
  const double avg = mass_on_realized / (steps / 2.0 - 1);
  EXPECT_GT(avg, 2.0 / cfg.n_states);  // at least 2x uniform
}

}  // namespace
}  // namespace skp
