#include "sim/netsim.hpp"

#include <gtest/gtest.h>

#include "core/access_model.hpp"
#include "test_util.hpp"
#include "workload/markov_source.hpp"

namespace skp {
namespace {

EngineConfig skp_engine() {
  EngineConfig cfg;
  cfg.policy = PrefetchPolicy::SKP;
  return cfg;
}

TEST(ServerCatalog, RetrievalTimeFromLatencyAndBandwidth) {
  ServerCatalog cat{{10.0, 20.0}};
  NetConfig net;
  net.bandwidth = 2.0;
  net.latency = 1.5;
  EXPECT_DOUBLE_EQ(cat.retrieval_time(0, net), 6.5);
  EXPECT_DOUBLE_EQ(cat.retrieval_time(1, net), 11.5);
  const auto r = cat.retrieval_times(net);
  EXPECT_DOUBLE_EQ(r[0], 6.5);
  EXPECT_DOUBLE_EQ(r[1], 11.5);
}

TEST(ServerCatalog, OutOfRangeThrows) {
  ServerCatalog cat{{10.0}};
  EXPECT_THROW(cat.retrieval_time(1, NetConfig{}), std::invalid_argument);
}

TEST(ClientSession, RejectsBadConfiguration) {
  ServerCatalog cat{{1.0, 2.0}};
  NetConfig bad_bw;
  bad_bw.bandwidth = 0.0;
  EXPECT_THROW(ClientSession(cat, bad_bw, skp_engine(), 2),
               std::invalid_argument);
  NetConfig bad_lat;
  bad_lat.latency = -1.0;
  EXPECT_THROW(ClientSession(cat, bad_lat, skp_engine(), 2),
               std::invalid_argument);
  EXPECT_THROW(ClientSession(ServerCatalog{{1.0, 0.0}}, NetConfig{},
                             skp_engine(), 2),
               std::invalid_argument);
}

TEST(ClientSession, RequestValidation) {
  ClientSession s(ServerCatalog{{1.0, 2.0}}, NetConfig{}, skp_engine(), 2);
  const std::vector<double> P{0.5, 0.5};
  EXPECT_THROW(s.request(5, 1.0, P), std::invalid_argument);
  EXPECT_THROW(s.request(0, -1.0, P), std::invalid_argument);
  EXPECT_THROW(s.request(0, 1.0, std::vector<double>{1.0}),
               std::invalid_argument);
}

// The central validation: with latency 0 and unit bandwidth (sizes == r),
// a fresh session's first cycle reproduces the analytic access time of
// Sections 3/5 exactly. This is what licenses the closed-form model.
TEST(ClientSession, SingleCycleMatchesAnalyticModel) {
  Rng rng(91);
  for (int trial = 0; trial < 200; ++trial) {
    testing::RandomInstanceOptions opt;
    opt.n = 8;
    const Instance inst = testing::random_instance(rng, opt);

    ServerCatalog cat{inst.r};  // bandwidth 1, latency 0 -> sizes = r
    ClientSession session(cat, NetConfig{}, skp_engine(), inst.n());

    // What the engine would plan from a cold cache.
    SlotCache empty(inst.n(), inst.n());
    FreqTracker freq(inst.n());
    const PrefetchEngine engine(skp_engine());
    const auto plan = engine.plan_with_cache(inst, empty, &freq);

    const auto item =
        static_cast<ItemId>(rng.next_below(inst.n()));
    const double T_des = session.request(item, inst.v, inst.P);
    const double T_model = realized_access_time(inst, plan.fetch, item);
    EXPECT_NEAR(T_des, T_model, 1e-9)
        << "trial " << trial << " item " << item;
  }
}

TEST(ClientSession, HitAfterPrefetchIsFree) {
  // One certain item that fits in the viewing time: T = 0.
  ServerCatalog cat{{5.0, 1.0}};
  ClientSession s(cat, NetConfig{}, skp_engine(), 2);
  const std::vector<double> P{0.0, 1.0};
  EXPECT_DOUBLE_EQ(s.request(1, 2.0, P), 0.0);
  EXPECT_EQ(s.metrics().hits, 1u);
  EXPECT_EQ(s.metrics().prefetch_fetches, 1u);
  EXPECT_EQ(s.metrics().demand_fetches, 0u);
}

TEST(ClientSession, MissPaysStretchPlusRetrieval) {
  // Prefetch of item 1 (r=4) stretches past v=2 by 2; a request for item 0
  // (r=5) then waits the stretch plus its own transfer: T = 2 + 5 = 7.
  ServerCatalog cat{{5.0, 4.0}};
  ClientSession s(cat, NetConfig{}, skp_engine(), 2);
  const std::vector<double> P{0.1, 0.9};
  // SKP with v=2: F = {1} (g = 3.6 - 2 = 1.6 > 0).
  EXPECT_DOUBLE_EQ(s.request(0, 2.0, P), 7.0);
  EXPECT_EQ(s.metrics().demand_fetches, 1u);
}

TEST(ClientSession, StretchCarryoverDelaysNextCycle) {
  // Cycle 1 leaves the link busy past the request (hit in K while z is
  // still in flight); cycle 2's transfers must queue behind it. This is
  // the Section-4.4 "stretch intrudes into the next viewing time" effect
  // that the per-cycle analytic model ignores.
  ServerCatalog cat{{3.0, 1.0, 10.0, 2.0, 5.0}};
  ClientSession s(cat, NetConfig{}, skp_engine(), 5);
  // Cycle 1: F = {1, 2} (st = 9); request 1 hits (T = 0) at t = 2 while
  // item 2 transfers until t = 11.
  const std::vector<double> P1{0.0, 0.6, 0.4, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(s.request(1, 2.0, P1), 0.0);
  // Cycle 2 (t0 = 2): prefetch of 4 queues at t = 11; request of 3 at
  // t = 3 misses and waits behind both: T = 16 + 2 - 3 = 15.
  const std::vector<double> P2{0.0, 0.0, 0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(s.request(3, 1.0, P2), 15.0);
}

TEST(ClientSession, CancelPendingRecoversQueuedTime) {
  // Same scenario as above but queued prefetches are dropped on demand:
  // the demand fetch only waits for the in-flight transfer (t = 11),
  // T = 11 + 2 - 3 = 10.
  ServerCatalog cat{{3.0, 1.0, 10.0, 2.0, 5.0}};
  NetConfig net;
  net.cancel_pending_on_demand = true;
  ClientSession s(cat, net, skp_engine(), 5);
  const std::vector<double> P1{0.0, 0.6, 0.4, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(s.request(1, 2.0, P1), 0.0);
  const std::vector<double> P2{0.0, 0.0, 0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(s.request(3, 1.0, P2), 10.0);
}

TEST(ClientSession, LatencyAddsPerTransfer) {
  ServerCatalog cat{{4.0, 1.0}};
  NetConfig net;
  net.latency = 0.5;
  ClientSession s(cat, net, skp_engine(), 2);
  // No prefetch possible (P mass on the requested item, v = 0).
  const std::vector<double> P{1.0, 0.0};
  EXPECT_DOUBLE_EQ(s.request(0, 0.0, P), 4.5);
}

TEST(ClientSession, CacheHitCostsNothing) {
  ServerCatalog cat{{4.0, 1.0}};
  ClientSession s(cat, NetConfig{}, skp_engine(), 2);
  const std::vector<double> P{1.0, 0.0};
  const double t1 = s.request(0, 0.0, P);
  EXPECT_GT(t1, 0.0);
  const double t2 = s.request(0, 5.0, P);  // now cached
  EXPECT_DOUBLE_EQ(t2, 0.0);
}

TEST(ClientSession, EvictionRespectsArbitration) {
  // Capacity 1; cached item has high Pr; demand fetch must still evict it
  // (mandatory victim).
  ServerCatalog cat{{4.0, 1.0}};
  ClientSession s(cat, NetConfig{}, skp_engine(), 1);
  const std::vector<double> P{0.9, 0.1};
  s.request(0, 0.0, P);  // 0 cached
  s.request(1, 0.0, P);  // demand fetch of 1 evicts 0
  EXPECT_TRUE(s.cache().contains(1));
  EXPECT_FALSE(s.cache().contains(0));
}

TEST(ClientSession, LinkUtilizationBounded) {
  Rng rng(93);
  ServerCatalog cat{{3.0, 4.0, 5.0, 2.0}};
  ClientSession s(cat, NetConfig{}, skp_engine(), 4);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> P(4, 0.25);
    s.request(static_cast<ItemId>(rng.next_below(4)), 3.0, P);
  }
  EXPECT_GE(s.link_utilization(), 0.0);
  EXPECT_LE(s.link_utilization(), 1.0 + 1e-9);
}

TEST(ClientSession, MetricsAccumulate) {
  ServerCatalog cat{{2.0, 3.0}};
  ClientSession s(cat, NetConfig{}, skp_engine(), 2);
  const std::vector<double> P{0.5, 0.5};
  for (int i = 0; i < 5; ++i) {
    s.request(static_cast<ItemId>(i % 2), 1.0, P);
  }
  EXPECT_EQ(s.metrics().requests, 5u);
  EXPECT_GT(s.metrics().network_time, 0.0);
}

TEST(ClientSession, PlanCacheOnOffBitIdentical) {
  // Drive two identical sessions through one Markov walk: the memoized
  // session (context key = source state) must report the same per-cycle
  // access times and final metrics as the plain one, and must actually
  // replay stored plans for recurring (state, cache) pairs.
  MarkovSourceConfig mcfg;
  mcfg.n_states = 12;
  mcfg.out_degree_lo = 3;
  mcfg.out_degree_hi = 6;
  Rng build(31);
  MarkovSource source(mcfg, build);
  Rng walk = build.split(5);
  source.teleport(0);

  ServerCatalog cat;
  cat.sizes.assign(12, 0.0);
  for (std::size_t i = 0; i < 12; ++i) {
    cat.sizes[i] = source.retrieval_time(static_cast<ItemId>(i));
  }
  ClientSession plain(cat, NetConfig{}, skp_engine(), 4);
  ClientSession memoized(cat, NetConfig{}, skp_engine(), 4);
  memoized.enable_plan_cache();

  std::size_t state = source.current_state();
  for (int i = 0; i < 600; ++i) {
    const double v = source.viewing_time(state);
    const std::span<const double> row = source.transition_row(state);
    const auto next = static_cast<ItemId>(source.step(walk));
    const double t_plain = plain.request(next, v, row);
    const double t_memo = memoized.request(next, v, row, std::nullopt,
                                           state);
    ASSERT_DOUBLE_EQ(t_plain, t_memo) << "cycle " << i;
    state = static_cast<std::size_t>(next);
  }
  EXPECT_EQ(plain.metrics().hits, memoized.metrics().hits);
  EXPECT_EQ(plain.metrics().solver_nodes, memoized.metrics().solver_nodes);
  EXPECT_DOUBLE_EQ(plain.metrics().network_time,
                   memoized.metrics().network_time);
  EXPECT_TRUE(memoized.plan_cache_enabled());
  EXPECT_GT(memoized.plan_cache_stats().selections.hits, 0u);
  EXPECT_GT(memoized.plan_cache_stats().plans.hits, 0u);
  EXPECT_FALSE(plain.plan_cache_enabled());
  EXPECT_EQ(plain.plan_cache_stats().plans.lookups(), 0u);
}

}  // namespace
}  // namespace skp
