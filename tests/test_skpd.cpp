// skpd daemon tests: wire protocol round-trips, the session store's
// exactly-once replay discipline, and live loopback runs against a
// spawned daemon (equivalence with netsim_des, resume bit-identity under
// forced connection drops, keepalive eviction, SIGTERM drain, slow-reader
// backpressure).
//
// The socket tests spawn the real skpd binary (SKPD_TEST_BIN, injected by
// CMake as the built tools/skpd path) through the same SkpdDaemonProcess
// helper the skpd_loopback driver uses, so "daemon drains on SIGTERM with
// exit 0" is asserted by every one of them.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/netsim_stepper.hpp"
#include "sim/runtime.hpp"
#include "sim/skpd_client.hpp"
#include "sim/skpd_loopback.hpp"
#include "sim/skpd_protocol.hpp"
#include "sim/skpd_session.hpp"

#ifndef SKPD_TEST_BIN
#define SKPD_TEST_BIN "tools/skpd"
#endif

namespace skp {
namespace {

SimSpec netsim_spec(std::size_t requests = 200, std::uint64_t seed = 7) {
  SimSpec spec;
  spec.driver = SimDriverKind::NetsimDes;
  spec.requests = requests;
  spec.seed = seed;
  spec.cache_size = 20;
  return spec;
}

// ---- Wire protocol ------------------------------------------------------

TEST(SkpdProtocol, FrameRoundTripAndPartialBuffer) {
  std::string wire;
  append_skpd_frame(wire, SkpdFrameType::kPing, "abc");
  append_skpd_frame(wire, SkpdFrameType::kBye, "");

  std::size_t offset = 0;
  const auto f1 = parse_skpd_frame(wire, offset);
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->type, SkpdFrameType::kPing);
  EXPECT_EQ(f1->payload, "abc");
  const auto f2 = parse_skpd_frame(wire, offset);
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, SkpdFrameType::kBye);
  EXPECT_TRUE(f2->payload.empty());
  EXPECT_EQ(offset, wire.size());
  EXPECT_FALSE(parse_skpd_frame(wire, offset).has_value());

  // Every truncated prefix of a valid frame parses to "not yet".
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    std::size_t off = 0;
    const auto partial =
        parse_skpd_frame(std::string_view(wire).substr(0, cut), off);
    if (cut < 8) {  // shorter than frame 1 (4B length + type + "abc")
      EXPECT_FALSE(partial.has_value()) << cut;
      EXPECT_EQ(off, 0u);
    }
  }
}

TEST(SkpdProtocol, FramingRejectsCorruptPrefixes) {
  // Zero length.
  std::string zero("\x00\x00\x00\x00", 4);
  std::size_t off = 0;
  EXPECT_THROW(parse_skpd_frame(zero, off), std::invalid_argument);
  // Oversized length prefix: rejected before any buffering happens.
  std::string huge("\xff\xff\xff\x7f", 4);
  off = 0;
  EXPECT_THROW(parse_skpd_frame(huge, off), std::invalid_argument);
  // Unknown frame type.
  std::string bad("\x01\x00\x00\x00\x63", 5);
  off = 0;
  EXPECT_THROW(parse_skpd_frame(bad, off), std::invalid_argument);
}

TEST(SkpdProtocol, HandshakeAndStepPayloadsRoundTrip) {
  SkpdHello hello;
  hello.token = 42;
  hello.last_ack = 17;
  hello.spec_text = "driver=netsim_des\n";
  const SkpdHello h2 = decode_hello(encode_hello(hello));
  EXPECT_EQ(h2.version, kSkpdProtocolVersion);
  EXPECT_EQ(h2.token, 42u);
  EXPECT_EQ(h2.last_ack, 17u);
  EXPECT_EQ(h2.spec_text, hello.spec_text);

  SkpdWelcome welcome;
  welcome.token = 9;
  welcome.executed = 123;
  welcome.resumed = true;
  const SkpdWelcome w2 = decode_welcome(encode_welcome(welcome));
  EXPECT_EQ(w2.token, 9u);
  EXPECT_EQ(w2.executed, 123u);
  EXPECT_TRUE(w2.resumed);

  SkpdStep step;
  step.seq = 1001;
  step.ack = 1000;
  const SkpdStep s2 = decode_step(encode_step(step));
  EXPECT_EQ(s2.seq, 1001u);
  EXPECT_EQ(s2.ack, 1000u);

  EXPECT_EQ(decode_ping(encode_ping(0xabcdef0123456789ull)),
            0xabcdef0123456789ull);
}

TEST(SkpdProtocol, StepResultRoundTripsDoublesExactly) {
  NetsimStepSnapshot snap;
  snap.seq = 77;
  snap.T = 0.1 + 0.2;  // famously not 0.3: must survive bit-exactly
  snap.requests = 77;
  snap.hits = 41;
  snap.demand_fetches = 36;
  snap.prefetch_fetches = 55;
  snap.solver_nodes = 1234567;
  snap.plans = 70;
  snap.deadline_hits = 3;
  EXPECT_EQ(decode_step_result(encode_step_result(snap)), snap);
}

TEST(SkpdProtocol, SimSpecRoundTripsIncludingLinkSchedule) {
  SimSpec spec = netsim_spec(500, 99);
  spec.bandwidth = 2.5;
  spec.latency = 0.125;
  spec.min_profit_threshold = 0.07;
  spec.predictor = PredictorKind::Markov1;
  spec.predictor_min_prob = 0.02;
  spec.predictor_warmup = 64;
  spec.fault.fail_rate = 0.1;
  spec.fault.retry.max_attempts = 3;
  spec.fault.retry.backoff_base = 0.5;
  spec.fault.retry.jitter = 0.25;
  spec.link_schedule = {{10.0, 1.0, 0.0}, {5.0, 0.25, 1.5}};
  const SimSpec back = decode_sim_spec(encode_sim_spec(spec));
  EXPECT_EQ(back, spec);
}

TEST(SkpdProtocol, SimSpecDecodeRejectsUnknownKeys) {
  std::string text = encode_sim_spec(netsim_spec());
  text += "frobnicate=1\n";
  EXPECT_THROW(decode_sim_spec(text), std::invalid_argument);
}

TEST(SkpdProtocol, SimResultRoundTripsTheNetsimBooks) {
  const SimResult res = run_sim(netsim_spec(300, 11));
  const SimResult back = decode_sim_result(encode_sim_result(res));
  EXPECT_EQ(back.metrics.requests, res.metrics.requests);
  EXPECT_EQ(back.metrics.hits, res.metrics.hits);
  EXPECT_EQ(back.metrics.demand_fetches, res.metrics.demand_fetches);
  EXPECT_EQ(back.metrics.prefetch_fetches, res.metrics.prefetch_fetches);
  EXPECT_EQ(back.metrics.wasted_prefetches, res.metrics.wasted_prefetches);
  EXPECT_EQ(back.metrics.solver_nodes, res.metrics.solver_nodes);
  // The OnlineStats state ships exactly (n, mean, m2, min, max).
  EXPECT_EQ(back.metrics.access_time.count(), res.metrics.access_time.count());
  EXPECT_EQ(back.metrics.access_time.mean(), res.metrics.access_time.mean());
  EXPECT_EQ(back.metrics.access_time.m2(), res.metrics.access_time.m2());
  EXPECT_EQ(back.metrics.access_time.min(), res.metrics.access_time.min());
  EXPECT_EQ(back.metrics.access_time.max(), res.metrics.access_time.max());
  EXPECT_EQ(back.metrics.network_time, res.metrics.network_time);
  EXPECT_EQ(back.plans, res.plans);
  EXPECT_EQ(back.deadline_hits, res.deadline_hits);
  EXPECT_EQ(back.link_utilization, res.link_utilization);
  EXPECT_EQ(back.fault, res.fault);
  EXPECT_EQ(back.plan_cache.plans.hits, res.plan_cache.plans.hits);
  EXPECT_EQ(back.plan_cache.plans.misses, res.plan_cache.plans.misses);
  EXPECT_EQ(back.plan_cache.selections.hits, res.plan_cache.selections.hits);
  EXPECT_EQ(back.overload.transitions, res.overload.transitions);
}

// ---- Session store ------------------------------------------------------

TEST(SkpdSessionStore, ExactlyOnceReplayIsBitIdentical) {
  SkpdSessionStore store;
  SkpdSession& session = store.create(encode_sim_spec(netsim_spec(50)));
  EXPECT_EQ(session.token(), 1u);
  EXPECT_EQ(store.find(1), &session);
  EXPECT_EQ(store.find(99), nullptr);

  // Execute 1..5 without acking; all five stay buffered.
  std::vector<NetsimStepSnapshot> first;
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    first.push_back(session.step(seq, 0));
    EXPECT_EQ(first.back().seq, seq);
  }
  EXPECT_EQ(session.unacked(), 5u);

  // Re-request the full window: replayed results are the SAME snapshots,
  // and nothing executes twice.
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    EXPECT_EQ(session.step(seq, 0), first[seq - 1]) << seq;
  }
  EXPECT_EQ(session.executed(), 5u);

  // Acking prunes the buffer and narrows the window.
  session.acknowledge(3);
  EXPECT_EQ(session.unacked(), 2u);
  EXPECT_EQ(session.step(4, 3), first[3]);
  EXPECT_THROW(session.step(3, 3), std::invalid_argument);  // below window
  EXPECT_THROW(session.step(7, 3), std::invalid_argument);  // above window
  EXPECT_THROW(session.acknowledge(9), std::invalid_argument);
}

TEST(SkpdSessionStore, ResumedTrajectoryMatchesUninterrupted) {
  const SimSpec spec = netsim_spec(120, 21);
  NetsimStepper golden(spec);

  SkpdSessionStore store;
  SkpdSession& session = store.create(encode_sim_spec(spec));
  std::uint64_t acked = 0;
  // Drive with a crash-and-replay pattern: every 7th result is "lost"
  // (not acked, re-requested), mimicking a client dying between receive
  // and ack.
  for (std::uint64_t seq = 1; seq <= spec.requests; ++seq) {
    const NetsimStepSnapshot expect = golden.step();
    NetsimStepSnapshot got = session.step(seq, acked);
    if (seq % 7 == 0) {
      got = session.step(seq, acked);  // replay after the simulated loss
    }
    EXPECT_EQ(got, expect) << "cycle " << seq;
    acked = seq;
  }
  EXPECT_TRUE(session.done());
  // And the final books equal the uninterrupted run's, field for field.
  const SimResult via_session = session.stepper().result();
  const SimResult via_run = run_sim(spec);
  EXPECT_EQ(via_session.metrics.hits, via_run.metrics.hits);
  EXPECT_EQ(via_session.metrics.solver_nodes, via_run.metrics.solver_nodes);
  EXPECT_EQ(via_session.plans, via_run.plans);
  EXPECT_THROW(session.step(spec.requests + 1, spec.requests),
               std::invalid_argument);
}

TEST(SkpdSessionStore, RejectsMalformedSpecs) {
  SkpdSessionStore store;
  EXPECT_THROW(store.create("not a spec"), std::invalid_argument);
  // A spec netsim_des cannot serve (wrong driver requests are fine —
  // the daemon hosts the netsim path regardless — but warmup is not).
  SimSpec bad = netsim_spec();
  bad.warmup = 10;
  EXPECT_THROW(store.create(encode_sim_spec(bad)), std::invalid_argument);
}

// ---- Live daemon over loopback ------------------------------------------

std::string daemon_binary() { return SKPD_TEST_BIN; }

TEST(SkpdDaemon, LoopbackRunMatchesInProcessGolden) {
  const SimSpec spec = netsim_spec(250, 5);
  SkpdDaemonProcess daemon(daemon_binary());
  SkpdClientConfig cfg;
  cfg.port = daemon.port();
  SkpdClient client(cfg, spec);

  NetsimStepper golden(spec);
  while (!client.done()) {
    EXPECT_EQ(client.step(), golden.step());
  }
  const SimResult via_daemon = client.finish();
  const SimResult via_run = run_sim(spec);
  EXPECT_EQ(via_daemon.metrics.requests, via_run.metrics.requests);
  EXPECT_EQ(via_daemon.metrics.hits, via_run.metrics.hits);
  EXPECT_EQ(via_daemon.metrics.solver_nodes, via_run.metrics.solver_nodes);
  EXPECT_EQ(via_daemon.metrics.access_time.mean(),
            via_run.metrics.access_time.mean());
  EXPECT_EQ(via_daemon.plans, via_run.plans);
  EXPECT_EQ(client.reconnects(), 0u);

  const int status = daemon.terminate();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(SkpdDaemon, KilledConnectionResumesBitIdentically) {
  const SimSpec spec = netsim_spec(200, 13);
  SkpdDaemonProcess daemon(daemon_binary());
  SkpdClientConfig cfg;
  cfg.port = daemon.port();
  cfg.drop_every = 17;  // hard-drop the connection before every 17th step
  SkpdClient client(cfg, spec);

  NetsimStepper golden(spec);
  while (!client.done()) {
    EXPECT_EQ(client.step(), golden.step());
  }
  // The chaos knob actually fired, and the trajectory above still
  // matched cycle for cycle — resume is bit-identical, not approximate.
  EXPECT_GT(client.reconnects(), 0u);
  const SimResult via_daemon = client.finish();
  const SimResult via_run = run_sim(spec);
  EXPECT_EQ(via_daemon.metrics.hits, via_run.metrics.hits);
  EXPECT_EQ(via_daemon.metrics.solver_nodes, via_run.metrics.solver_nodes);
  EXPECT_EQ(via_daemon.plans, via_run.plans);

  const int status = daemon.terminate();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(SkpdDaemon, DriverMatchesNetsimDesRowAndChaosMatchesCalm) {
  SimSpec spec = netsim_spec(150, 3);
  ::setenv("SKPD_BIN", daemon_binary().c_str(), 1);
  ::unsetenv("SKPD_ADDR");
  ::unsetenv("SKPD_DROP_EVERY");
  spec.driver = SimDriverKind::SkpdLoopback;
  const SimResult calm = run_sim(spec);

  ::setenv("SKPD_DROP_EVERY", "23", 1);
  const SimResult chaos = run_sim(spec);
  ::unsetenv("SKPD_DROP_EVERY");
  ::unsetenv("SKPD_BIN");

  spec.driver = SimDriverKind::NetsimDes;
  const SimResult golden = run_sim(spec);
  for (const SimResult* r : {&calm, &chaos}) {
    EXPECT_EQ(r->metrics.requests, golden.metrics.requests);
    EXPECT_EQ(r->metrics.hits, golden.metrics.hits);
    EXPECT_EQ(r->metrics.solver_nodes, golden.metrics.solver_nodes);
    EXPECT_EQ(r->metrics.access_time.mean(),
              golden.metrics.access_time.mean());
    EXPECT_EQ(r->plans, golden.plans);
    EXPECT_EQ(r->deadline_hits, golden.deadline_hits);
  }
}

TEST(SkpdDaemon, DriverRejectsWithoutDaemonEnvironment) {
  ::unsetenv("SKPD_BIN");
  ::unsetenv("SKPD_ADDR");
  SimSpec spec = netsim_spec(10);
  spec.driver = SimDriverKind::SkpdLoopback;
  EXPECT_THROW(run_sim(spec), std::invalid_argument);
}

TEST(SkpdDaemon, KeepaliveEvictsSilentPeerButSessionSurvives) {
  const SimSpec spec = netsim_spec(60, 9);
  // Aggressive keepalive so the test stays fast: ping at 0.15s idle,
  // evict at 0.3s.
  SkpdDaemonProcess daemon(daemon_binary(), {"--keepalive=0.3"});
  SkpdClientConfig cfg;
  cfg.port = daemon.port();
  SkpdClient client(cfg, spec);
  NetsimStepper golden(spec);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(client.step(), golden.step());
  // Go silent past the eviction deadline WITHOUT reading the socket, so
  // the daemon's PINGs go unanswered and it evicts the connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(900));
  // The next step rides the reconnect/resume path and stays on the
  // golden trajectory.
  while (!client.done()) EXPECT_EQ(client.step(), golden.step());
  EXPECT_GT(client.reconnects(), 0u);
  (void)client.finish();
  const int status = daemon.terminate();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(SkpdDaemon, SigtermDrainWritesCompleteStatsCsvAndExitsZero) {
  const std::string csv_path =
      ::testing::TempDir() + "skpd_drain_stats.csv";
  std::remove(csv_path.c_str());
  const SimSpec spec = netsim_spec(40, 17);
  {
    SkpdDaemonProcess daemon(daemon_binary(),
                             {"--stats-csv=" + csv_path});
    SkpdClientConfig cfg;
    cfg.port = daemon.port();
    SkpdClient client(cfg, spec);
    for (int i = 0; i < 12; ++i) (void)client.step();
    // SIGTERM with the session mid-run and the connection open: the
    // daemon must drain and still exit 0.
    const int status = daemon.terminate();
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
  std::ifstream in(csv_path);
  ASSERT_TRUE(in.good()) << csv_path;
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header.rfind("token,executed,total,done,", 0), 0u) << header;
  ASSERT_TRUE(std::getline(in, row)) << "expected one session row";
  std::istringstream cells(row);
  std::string token, executed;
  std::getline(cells, token, ',');
  std::getline(cells, executed, ',');
  EXPECT_EQ(token, "1");
  EXPECT_EQ(executed, "12");
  std::remove(csv_path.c_str());
}

// Minimal raw-socket helper for the backpressure test: SkpdClient is
// strictly synchronous, and backpressure only builds when results pile
// up unread.
class RawPipelineClient {
 public:
  explicit RawPipelineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    // A tiny receive buffer makes the daemon's send() back up quickly.
    const int tiny = 1024;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~RawPipelineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_frame(SkpdFrameType type, const std::string& payload) {
    std::string wire;
    append_skpd_frame(wire, type, payload);
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = ::send(fd_, wire.data() + sent,
                               wire.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  // Blocking read of the next frame (test-scale simplicity).
  SkpdFrame read_frame(std::string& storage) {
    for (;;) {
      std::size_t off = off_;
      if (const auto frame = parse_skpd_frame(rx_, off)) {
        off_ = off;
        storage.assign(frame->payload);
        return SkpdFrame{frame->type, storage};
      }
      char buf[512];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        throw std::runtime_error("daemon closed the pipe");
      }
      rx_.append(buf, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string rx_;
  std::size_t off_ = 0;
};

TEST(SkpdDaemon, SlowReaderIsForcedDownTheDegradationLadder) {
  // Soft limit of one byte: the first STEP_RESULT that cannot be
  // flushed to the (tiny, unread) socket forces the session one rung
  // down. The hard limit stays huge so the connection itself survives.
  const SimSpec spec = netsim_spec(2000, 29);
  // The tiny --sndbuf keeps kernel buffering from masking the userspace
  // queue: results must actually pile up in the daemon's write queue.
  SkpdDaemonProcess daemon(
      daemon_binary(),
      {"--write-queue-soft=1", "--write-queue-hard=100000000",
       "--sndbuf=4096"});
  RawPipelineClient raw(daemon.port());

  SkpdHello hello;
  hello.spec_text = encode_sim_spec(spec);
  raw.send_frame(SkpdFrameType::kHello, encode_hello(hello));
  std::string storage;
  ASSERT_EQ(raw.read_frame(storage).type, SkpdFrameType::kWelcome);

  // Pipeline every STEP without reading a single result: the daemon's
  // write queue backs up behind our 1KB receive buffer.
  for (std::uint64_t seq = 1; seq <= spec.requests; ++seq) {
    SkpdStep step;
    step.seq = seq;
    step.ack = seq - 1;
    raw.send_frame(SkpdFrameType::kStep, encode_step(step));
  }
  // Now drain all results (answering keepalive PINGs if they interleave)
  // and fetch the final books.
  std::uint64_t last_seq = 0;
  while (last_seq < spec.requests) {
    const SkpdFrame frame = raw.read_frame(storage);
    if (frame.type == SkpdFrameType::kPing) {
      raw.send_frame(SkpdFrameType::kPong,
                     encode_ping(decode_ping(frame.payload)));
      continue;
    }
    ASSERT_EQ(frame.type, SkpdFrameType::kStepResult);
    last_seq = decode_step_result(frame.payload).seq;
  }
  raw.send_frame(SkpdFrameType::kStats, {});
  SkpdFrame stats = raw.read_frame(storage);
  while (stats.type == SkpdFrameType::kPing) {
    raw.send_frame(SkpdFrameType::kPong,
                   encode_ping(decode_ping(stats.payload)));
    stats = raw.read_frame(storage);
  }
  ASSERT_EQ(stats.type, SkpdFrameType::kStatsResult);
  const SimResult result = decode_sim_result(stats.payload);

  // The overload controller recorded at least one FORCED transition —
  // the slow reader got degraded service, not unbounded buffering. The
  // run is complete all the same (correctness under pressure).
  EXPECT_GT(result.overload.forced_transitions, 0u);
  EXPECT_EQ(result.metrics.requests, spec.requests);
  raw.send_frame(SkpdFrameType::kBye, {});

  const int status = daemon.terminate();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace skp
