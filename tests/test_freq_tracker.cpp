#include "cache/freq_tracker.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace skp {
namespace {

TEST(FreqTracker, ConstructionValidation) {
  EXPECT_THROW(FreqTracker(0), std::invalid_argument);
  EXPECT_THROW(FreqTracker(5, 0.0), std::invalid_argument);
  EXPECT_THROW(FreqTracker(5, 1.5), std::invalid_argument);
  EXPECT_THROW(FreqTracker(5, 0.5, 0), std::invalid_argument);
  EXPECT_NO_THROW(FreqTracker(5));
}

TEST(FreqTracker, CountsAccesses) {
  FreqTracker t(4);
  t.record(2);
  t.record(2);
  t.record(3);
  EXPECT_DOUBLE_EQ(t.frequency(2), 2.0);
  EXPECT_DOUBLE_EQ(t.frequency(3), 1.0);
  EXPECT_DOUBLE_EQ(t.frequency(0), 0.0);
  EXPECT_EQ(t.total_accesses(), 3u);
}

TEST(FreqTracker, OutOfRangeThrows) {
  FreqTracker t(4);
  EXPECT_THROW(t.record(4), std::invalid_argument);
  EXPECT_THROW(t.record(-1), std::invalid_argument);
  EXPECT_THROW(t.frequency(9), std::invalid_argument);
}

TEST(FreqTracker, DelaySavingProfit) {
  FreqTracker t(4);
  t.record(1);
  t.record(1);
  t.record(1);
  EXPECT_DOUBLE_EQ(t.delay_saving_profit(1, 10.0), 30.0);
  EXPECT_DOUBLE_EQ(t.delay_saving_profit(0, 10.0), 0.0);
}

TEST(FreqTracker, ResetClearsEverything) {
  FreqTracker t(4);
  t.record(0);
  t.record(1);
  t.reset();
  EXPECT_DOUBLE_EQ(t.frequency(0), 0.0);
  EXPECT_EQ(t.total_accesses(), 0u);
}

TEST(FreqTracker, NoDecayByDefault) {
  FreqTracker t(2);
  for (int i = 0; i < 5000; ++i) t.record(0);
  EXPECT_DOUBLE_EQ(t.frequency(0), 5000.0);
}

TEST(FreqTracker, DecayAgesCounts) {
  FreqTracker t(2, /*decay=*/0.5, /*decay_interval=*/10);
  for (int i = 0; i < 10; ++i) t.record(0);
  // After the 10th record the decay fires: 10 * 0.5 = 5.
  EXPECT_DOUBLE_EQ(t.frequency(0), 5.0);
}

TEST(FreqTracker, DecayAppliesToAllItems) {
  FreqTracker t(3, 0.5, 4);
  t.record(0);
  t.record(1);
  t.record(1);
  t.record(2);  // triggers decay
  EXPECT_DOUBLE_EQ(t.frequency(0), 0.5);
  EXPECT_DOUBLE_EQ(t.frequency(1), 1.0);
  EXPECT_DOUBLE_EQ(t.frequency(2), 0.5);
}

}  // namespace
}  // namespace skp
