// Randomized multi-cycle properties of the DES network substrate.
#include <gtest/gtest.h>

#include "sim/netsim.hpp"
#include "test_util.hpp"
#include "workload/prob_gen.hpp"
#include "workload/request_stream.hpp"

namespace skp {
namespace {

struct SessionParam {
  PrefetchPolicy policy;
  double latency;
  bool cancel;
};

std::string session_param_name(
    const ::testing::TestParamInfo<SessionParam>& info) {
  const auto& p = info.param;
  return to_string(p.policy) +
         (p.latency > 0 ? "_lat" : "_nolat") +
         (p.cancel ? "_cancel" : "_keep");
}

class SessionGridTest : public ::testing::TestWithParam<SessionParam> {
 protected:
  // Drives `cycles` random request cycles and returns the session.
  std::unique_ptr<ClientSession> drive(Rng& rng, int cycles) const {
    const std::size_t n = 12;
    std::vector<double> sizes(n);
    for (auto& s : sizes) s = rng.uniform(1.0, 20.0);
    NetConfig net;
    net.latency = GetParam().latency;
    net.cancel_pending_on_demand = GetParam().cancel;
    EngineConfig ecfg;
    ecfg.policy = GetParam().policy;
    ecfg.arbitration.sub = SubArbitration::DS;
    auto session = std::make_unique<ClientSession>(
        ServerCatalog{sizes}, net, ecfg, /*cache=*/5);
    for (int i = 0; i < cycles; ++i) {
      const auto P = flat_probabilities(n, rng);
      const auto item = sample_categorical(P, rng);
      const double v = rng.uniform(0.0, 30.0);
      const double T = session->request(
          item, v, P,
          GetParam().policy == PrefetchPolicy::Perfect
              ? std::optional<ItemId>(item)
              : std::nullopt);
      EXPECT_GE(T, 0.0);
    }
    return session;
  }
};

TEST_P(SessionGridTest, MetricsAndClockConsistent) {
  Rng rng(8000);
  const auto session = drive(rng, 60);
  const auto& m = session->metrics();
  EXPECT_EQ(m.requests, 60u);
  EXPECT_EQ(m.access_time.count(), 60u);
  EXPECT_LE(m.hits, m.requests);
  EXPECT_GE(session->now(), 0.0);
  EXPECT_GE(session->link_utilization(), 0.0);
  EXPECT_LE(session->link_utilization(), 1.0 + 1e-9);
  EXPECT_LE(session->cache().size(), session->cache().capacity());
}

TEST_P(SessionGridTest, DeterministicAcrossRuns) {
  Rng rng1(8001), rng2(8001);
  const auto a = drive(rng1, 40);
  const auto b = drive(rng2, 40);
  EXPECT_DOUBLE_EQ(a->metrics().mean_access_time(),
                   b->metrics().mean_access_time());
  EXPECT_EQ(a->metrics().hits, b->metrics().hits);
  EXPECT_DOUBLE_EQ(a->now(), b->now());
}

TEST_P(SessionGridTest, NetworkTimeAccountsAllTransfers) {
  Rng rng(8002);
  const auto session = drive(rng, 60);
  const auto& m = session->metrics();
  // Every fetch (prefetch or demand) contributes at least the latency and
  // at most the largest retrieval time.
  if (m.prefetch_fetches + m.demand_fetches > 0) {
    EXPECT_GT(m.network_time, 0.0);
  }
  if (GetParam().policy == PrefetchPolicy::None) {
    EXPECT_EQ(m.prefetch_fetches, 0u);
  }
}

TEST_P(SessionGridTest, PerfectNeverSlowerThanDemandOnAverage) {
  if (GetParam().policy != PrefetchPolicy::Perfect) GTEST_SKIP();
  // Run a paired demand-only session on the same request stream.
  Rng rng_a(8003), rng_b(8003);
  const auto perfect = drive(rng_a, 80);
  // Drive an equivalent demand-only session on the same request stream.
  const std::size_t n = 12;
  std::vector<double> sizes(n);
  for (auto& s : sizes) s = rng_b.uniform(1.0, 20.0);
  NetConfig net;
  net.latency = GetParam().latency;
  net.cancel_pending_on_demand = GetParam().cancel;
  EngineConfig ecfg;
  ecfg.policy = PrefetchPolicy::None;
  ecfg.arbitration.sub = SubArbitration::DS;
  ClientSession demand(ServerCatalog{sizes}, net, ecfg, 5);
  for (int i = 0; i < 80; ++i) {
    const auto P = flat_probabilities(n, rng_b);
    const auto item = sample_categorical(P, rng_b);
    const double v = rng_b.uniform(0.0, 30.0);
    demand.request(item, v, P);
  }
  EXPECT_LE(perfect->metrics().mean_access_time(),
            demand.metrics().mean_access_time() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SessionGridTest,
    ::testing::Values(
        SessionParam{PrefetchPolicy::None, 0.0, false},
        SessionParam{PrefetchPolicy::KP, 0.0, false},
        SessionParam{PrefetchPolicy::KP, 0.5, true},
        SessionParam{PrefetchPolicy::SKP, 0.0, false},
        SessionParam{PrefetchPolicy::SKP, 0.0, true},
        SessionParam{PrefetchPolicy::SKP, 1.0, false},
        SessionParam{PrefetchPolicy::SKP, 1.0, true},
        SessionParam{PrefetchPolicy::Perfect, 0.0, false},
        SessionParam{PrefetchPolicy::Perfect, 0.5, true}),
    session_param_name);

}  // namespace
}  // namespace skp
