#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace skp {
namespace {

Trace sample_trace() {
  Trace t(4, {10.0, 20.0, 5.0, 8.0});
  t.append(0, 12.0);
  t.append(2, 30.5);
  t.append(1, 7.0);
  return t;
}

TEST(Trace, ConstructionValidation) {
  EXPECT_THROW(Trace(0, {}), std::invalid_argument);
  EXPECT_THROW(Trace(2, {1.0}), std::invalid_argument);
  EXPECT_THROW(Trace(2, {1.0, 0.0}), std::invalid_argument);
  EXPECT_NO_THROW(Trace(2, {1.0, 2.0}));
}

TEST(Trace, AppendValidation) {
  Trace t(2, {1.0, 2.0});
  EXPECT_THROW(t.append(2, 1.0), std::invalid_argument);
  EXPECT_THROW(t.append(-1, 1.0), std::invalid_argument);
  EXPECT_THROW(t.append(0, -1.0), std::invalid_argument);
  t.append(0, 0.0);
  EXPECT_EQ(t.size(), 1u);
}

TEST(Trace, RecordsPreserved) {
  const Trace t = sample_trace();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.records()[0].item, 0);
  EXPECT_DOUBLE_EQ(t.records()[1].viewing_time, 30.5);
  EXPECT_EQ(t.records()[2].item, 1);
}

TEST(Trace, RoundTripThroughStream) {
  const Trace t = sample_trace();
  std::stringstream ss;
  t.save(ss);
  const Trace loaded = Trace::load(ss);
  EXPECT_TRUE(t == loaded);
}

TEST(Trace, RoundTripThroughFile) {
  const Trace t = sample_trace();
  const std::string path = ::testing::TempDir() + "/skp_trace_test.txt";
  t.save_file(path);
  const Trace loaded = Trace::load_file(path);
  EXPECT_TRUE(t == loaded);
}

TEST(Trace, LoadSkipsCommentsAndBlanks) {
  std::stringstream ss;
  ss << "skptrace v1 2\n"
     << "r 3 4\n"
     << "# a comment\n"
     << "\n"
     << "1 5.5\n";
  const Trace t = Trace::load(ss);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.records()[0].item, 1);
  EXPECT_DOUBLE_EQ(t.records()[0].viewing_time, 5.5);
}

TEST(Trace, LoadRejectsBadHeader) {
  std::stringstream ss;
  ss << "not-a-trace v1 2\n";
  EXPECT_THROW(Trace::load(ss), std::invalid_argument);
}

TEST(Trace, LoadRejectsTruncatedRLine) {
  std::stringstream ss;
  ss << "skptrace v1 3\nr 1 2\n";
  EXPECT_THROW(Trace::load(ss), std::invalid_argument);
}

TEST(Trace, LoadRejectsMalformedRecord) {
  std::stringstream ss;
  ss << "skptrace v1 2\nr 1 2\nabc def\n";
  EXPECT_THROW(Trace::load(ss), std::invalid_argument);
}

TEST(Trace, LoadRejectsOutOfRangeItem) {
  std::stringstream ss;
  ss << "skptrace v1 2\nr 1 2\n5 1.0\n";
  EXPECT_THROW(Trace::load(ss), std::invalid_argument);
}

TEST(Trace, LoadFileMissingThrows) {
  EXPECT_THROW(Trace::load_file("/nonexistent/trace.txt"),
               std::invalid_argument);
}

TEST(Trace, EqualityDiscriminates) {
  const Trace a = sample_trace();
  Trace b = sample_trace();
  EXPECT_TRUE(a == b);
  b.append(3, 1.0);
  EXPECT_FALSE(a == b);
}

TEST(Trace, RetrievalTimesPreservedExactly) {
  Trace t(2, {1.25, 2.75});
  std::stringstream ss;
  t.save(ss);
  const Trace loaded = Trace::load(ss);
  EXPECT_DOUBLE_EQ(loaded.retrieval_times()[0], 1.25);
  EXPECT_DOUBLE_EQ(loaded.retrieval_times()[1], 2.75);
}

}  // namespace
}  // namespace skp
