// Fault-injection tests (sim/fault.hpp + the netsim_des / multi_client
// drivers honoring SimSpec::fault).
//
// Three layers:
//   1. run_faulty_transfer unit semantics — the attempt/backoff loop's
//      occupancy, timeout cut, retry books and deterministic jitter.
//   2. The disabled-path contract: fail_rate == 0 (and retries-only
//      specs) must be BIT-identical to a spec with no fault block at all,
//      on both honoring drivers, plan cache on or off.
//   3. Conservation under injected faults: demand fetches stay reliable,
//      so resident hits + demand fetches == requests at ANY fail rate
//      (including 1.0), and the retry books always balance exactly:
//      failed_transfers == retries + abandoned.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/fault.hpp"
#include "sim/runtime.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace skp {
namespace {

constexpr double kPrice = 10.0;

FaultTransfer run_once(const FaultSpec& spec, FaultStats& stats,
                       std::uint64_t seed = 42, double start = 100.0) {
  Rng rng(seed);
  return run_faulty_transfer(spec, rng, stats, start,
                             [](double) { return kPrice; });
}

TEST(FaultTransfer, PassthroughWhenNothingCanFail) {
  FaultSpec spec;  // all rates zero
  FaultStats stats;
  const FaultTransfer ft = run_once(spec, stats);
  EXPECT_TRUE(ft.delivered);
  EXPECT_DOUBLE_EQ(ft.finish, 100.0 + kPrice);
  EXPECT_DOUBLE_EQ(ft.busy, kPrice);
  EXPECT_EQ(stats, FaultStats{});
}

TEST(FaultTransfer, CertainFailureExhaustsRetryBudget) {
  FaultSpec spec;
  spec.fail_rate = 1.0;
  spec.retry.max_attempts = 3;
  FaultStats stats;
  const FaultTransfer ft = run_once(spec, stats);
  EXPECT_FALSE(ft.delivered);
  // Three attempts, all failed: two re-attempts scheduled, then give up.
  EXPECT_EQ(stats.failed_transfers, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.abandoned, 1u);
  EXPECT_EQ(stats.failed_transfers, stats.retries + stats.abandoned);
  // No backoff configured: the attempts run back to back.
  EXPECT_DOUBLE_EQ(ft.busy, 3.0 * kPrice);
  EXPECT_DOUBLE_EQ(ft.finish, 100.0 + 3.0 * kPrice);
}

TEST(FaultTransfer, BackoffGrowsExponentiallyAndIdlesTheLink) {
  FaultSpec spec;
  spec.fail_rate = 1.0;
  spec.retry.max_attempts = 3;
  spec.retry.backoff_base = 1.0;
  spec.retry.backoff_factor = 2.0;
  FaultStats stats;
  const FaultTransfer ft = run_once(spec, stats);
  // Waits 1 then 2 between the three attempts; backoff gaps idle the
  // link, so busy excludes them while finish includes them.
  EXPECT_DOUBLE_EQ(ft.busy, 3.0 * kPrice);
  EXPECT_DOUBLE_EQ(ft.finish, 100.0 + 3.0 * kPrice + 1.0 + 2.0);
}

TEST(FaultTransfer, TimeoutCutsTheAttemptShort) {
  FaultSpec spec;
  spec.timeout = 4.0;  // < kPrice: every attempt is cut off
  FaultStats stats;
  const FaultTransfer ft = run_once(spec, stats);
  EXPECT_FALSE(ft.delivered);
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.failed_transfers, 1u);
  EXPECT_EQ(stats.abandoned, 1u);
  // The link is released at the cut, not at the nominal finish.
  EXPECT_DOUBLE_EQ(ft.busy, 4.0);
  EXPECT_DOUBLE_EQ(ft.finish, 104.0);
}

TEST(FaultTransfer, StallInflatesOccupancyButDelivers) {
  FaultSpec spec;
  spec.stall_rate = 1.0;
  spec.stall_factor = 4.0;
  FaultStats stats;
  const FaultTransfer ft = run_once(spec, stats);
  EXPECT_TRUE(ft.delivered);
  EXPECT_EQ(stats.stalled, 1u);
  EXPECT_EQ(stats.failed_transfers, 0u);
  EXPECT_DOUBLE_EQ(ft.busy, 4.0 * kPrice);
}

TEST(FaultTransfer, JitteredBackoffIsDeterministicPerStream) {
  FaultSpec spec;
  spec.fail_rate = 0.5;
  spec.stall_rate = 0.25;
  spec.retry.max_attempts = 4;
  spec.retry.backoff_base = 0.5;
  spec.retry.jitter = 0.3;
  for (std::uint64_t seed : {1u, 7u, 99u}) {
    FaultStats sa, sb;
    const FaultTransfer a = run_once(spec, sa, seed);
    const FaultTransfer b = run_once(spec, sb, seed);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.busy, b.busy);
    EXPECT_EQ(sa, sb);
  }
}

TEST(RetryPolicyEdge, MaxAttemptsOneNeverSamplesBackoff) {
  // With max_attempts == 1 there are no re-attempts, so the backoff
  // schedule (and its jitter draw) must never touch the RNG stream —
  // even with certain failure and an aggressive jittered policy armed.
  FaultSpec spec;
  spec.fail_rate = 1.0;
  spec.retry.max_attempts = 1;
  spec.retry.backoff_base = 5.0;
  spec.retry.backoff_factor = 100.0;
  spec.retry.jitter = 1.0;
  Rng rng(42), untouched(42);
  FaultStats stats;
  const FaultTransfer ft = run_faulty_transfer(
      spec, rng, stats, 0.0, [](double) { return kPrice; });
  EXPECT_FALSE(ft.delivered);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.abandoned, 1u);
  // No backoff gap: the single attempt ends the transfer immediately.
  EXPECT_DOUBLE_EQ(ft.finish, kPrice);
  // The failure draw consumed exactly the per-attempt draws (fail +
  // stall), nothing more: advancing the untouched twin by those two
  // draws re-synchronizes the streams.
  untouched.bernoulli(spec.fail_rate);
  untouched.bernoulli(spec.stall_rate);
  EXPECT_EQ(rng.next_double(), untouched.next_double());
}

TEST(RetryPolicyEdge, JitterBoundsHoldAtExtremeFactors) {
  // delay(k) must stay within [pure, pure * (1 + jitter)] where pure =
  // base * factor^(k-1), including at extreme factor/jitter values
  // where a bounds bug would explode fastest.
  for (const double factor : {1.0, 2.0, 100.0, 1e6}) {
    for (const double jitter : {0.0, 0.1, 10.0}) {
      RetryPolicy retry;
      retry.max_attempts = 8;
      retry.backoff_base = 0.25;
      retry.backoff_factor = factor;
      retry.jitter = jitter;
      Rng rng(7);
      for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
        const double pure =
            retry.backoff_base *
            std::pow(factor, static_cast<double>(attempt - 1));
        const double delay = retry_backoff_delay(retry, attempt, rng);
        EXPECT_GE(delay, pure) << "factor " << factor << " jitter "
                               << jitter << " attempt " << attempt;
        EXPECT_LE(delay, pure * (1.0 + jitter))
            << "factor " << factor << " jitter " << jitter << " attempt "
            << attempt;
      }
    }
  }
}

TEST(RetryPolicyEdge, BackoffSequenceDeterministicAcrossIdenticalSeeds) {
  RetryPolicy retry;
  retry.max_attempts = 16;
  retry.backoff_base = 0.05;
  retry.backoff_factor = 2.0;
  retry.jitter = 0.4;
  for (const std::uint64_t seed : {3u, 1234u, 0xdeadu}) {
    Rng a(seed), b(seed);
    for (std::size_t attempt = 1; attempt <= 12; ++attempt) {
      EXPECT_EQ(retry_backoff_delay(retry, attempt, a),
                retry_backoff_delay(retry, attempt, b))
          << "seed " << seed << " attempt " << attempt;
    }
    // A different seed with jitter engaged yields a different schedule
    // (the jitter draw is live, not a constant).
    Rng c(seed + 1);
    bool any_diff = false;
    Rng a2(seed);
    for (std::size_t attempt = 1; attempt <= 12; ++attempt) {
      any_diff |= retry_backoff_delay(retry, attempt, a2) !=
                  retry_backoff_delay(retry, attempt, c);
    }
    EXPECT_TRUE(any_diff) << "seed " << seed;
  }
}

TEST(FaultSpecValidation, RejectsOutOfRangeFields) {
  FaultSpec spec;
  spec.fail_rate = 1.5;
  EXPECT_THROW(validate_fault_spec(spec), std::invalid_argument);
  spec = {};
  spec.stall_factor = 0.5;
  EXPECT_THROW(validate_fault_spec(spec), std::invalid_argument);
  spec = {};
  spec.retry.max_attempts = 0;
  EXPECT_THROW(validate_fault_spec(spec), std::invalid_argument);
  spec = {};
  spec.retry.backoff_factor = 0.9;
  EXPECT_THROW(validate_fault_spec(spec), std::invalid_argument);
}

// ---- Driver integration -------------------------------------------------

SimSpec des_spec(SimDriverKind driver) {
  SimSpec spec;
  spec.driver = driver;
  spec.workload.n_items = 20;
  spec.requests = driver == SimDriverKind::MultiClientDes ? 300 : 800;
  spec.cache_size = 5;
  spec.bandwidth = 1.0;
  spec.latency = 1.0;
  spec.seed = 11;
  return spec;
}

void expect_same_counters(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.metrics.requests, b.metrics.requests);
  EXPECT_EQ(a.metrics.hits, b.metrics.hits);
  EXPECT_EQ(a.metrics.demand_fetches, b.metrics.demand_fetches);
  EXPECT_EQ(a.metrics.prefetch_fetches, b.metrics.prefetch_fetches);
  EXPECT_EQ(a.metrics.network_time, b.metrics.network_time);
  EXPECT_EQ(a.metrics.solver_nodes, b.metrics.solver_nodes);
  EXPECT_EQ(a.metrics.mean_access_time(), b.metrics.mean_access_time());
  EXPECT_EQ(a.fault, b.fault);
}

TEST(FaultRuntime, DisabledSpecIsBitIdenticalToSeed) {
  for (const SimDriverKind driver :
       {SimDriverKind::NetsimDes, SimDriverKind::MultiClientDes}) {
    const SimSpec plain = des_spec(driver);
    SimSpec zeroed = plain;
    zeroed.fault.fail_rate = 0.0;
    // A retry policy with no failure source never fires: enabled() is
    // false and the reliable path runs untouched.
    zeroed.fault.retry.max_attempts = 5;
    zeroed.fault.retry.backoff_base = 1.0;
    const SimResult a = run_sim(plain);
    const SimResult b = run_sim(zeroed);
    expect_same_counters(a, b);
    EXPECT_EQ(b.fault, FaultStats{});
  }
}

TEST(FaultRuntime, SameSeedReproducesFaultBooksExactly) {
  for (const SimDriverKind driver :
       {SimDriverKind::NetsimDes, SimDriverKind::MultiClientDes}) {
    SimSpec spec = des_spec(driver);
    spec.fault.fail_rate = 0.3;
    spec.fault.stall_rate = 0.2;
    spec.fault.retry.max_attempts = 3;
    spec.fault.retry.backoff_base = 0.5;
    spec.fault.retry.jitter = 0.25;
    const SimResult a = run_sim(spec);
    const SimResult b = run_sim(spec);
    expect_same_counters(a, b);
    EXPECT_GT(a.fault.failed_transfers, 0u);
  }
}

TEST(FaultRuntime, ConservationHoldsAtAnyFailRate) {
  for (const SimDriverKind driver :
       {SimDriverKind::NetsimDes, SimDriverKind::MultiClientDes}) {
    for (const double rate : {0.3, 1.0}) {
      SimSpec spec = des_spec(driver);
      spec.fault.fail_rate = rate;
      spec.fault.retry.max_attempts = 2;
      const SimResult res = run_sim(spec);
      // Demand fetches stay reliable, so every request is served.
      EXPECT_EQ(res.resident_hits() + res.metrics.demand_fetches,
                res.metrics.requests);
      EXPECT_EQ(res.fault.failed_transfers,
                res.fault.retries + res.fault.abandoned);
      if (rate == 1.0) {
        // Nothing ever delivers: every prefetch is eventually abandoned.
        EXPECT_GT(res.fault.abandoned, 0u);
      }
    }
  }
}

TEST(FaultRuntime, PlanCacheOnOffBitIdenticalUnderFaults) {
  for (const SimDriverKind driver :
       {SimDriverKind::NetsimDes, SimDriverKind::MultiClientDes}) {
    SimSpec on = des_spec(driver);
    on.fault.fail_rate = 0.25;
    on.fault.stall_rate = 0.1;
    on.fault.retry.max_attempts = 2;
    SimSpec off = on;
    off.use_plan_cache = false;
    const SimResult a = run_sim(on);
    const SimResult b = run_sim(off);
    expect_same_counters(a, b);
    EXPECT_GT(a.plan_cache.plans.lookups(), 0u);
    EXPECT_EQ(b.plan_cache.plans.lookups(), 0u);
  }
}

TEST(FaultRuntime, ShardSplitReproducesFaultColumns) {
  // The fault stream is derived from each spec's own seed, never from
  // which process ran it: sweeping seeds in two shards must produce the
  // same per-spec fault books as the unsharded enumeration.
  SimSpec spec = des_spec(SimDriverKind::NetsimDes);
  spec.fault.fail_rate = 0.4;
  spec.fault.retry.max_attempts = 2;
  for (const std::uint64_t seed : {3u, 4u, 5u, 6u}) {
    spec.seed = seed;
    const SimResult whole = run_sim(spec);
    const SimResult sharded = run_sim(spec);  // any worker, same spec
    EXPECT_EQ(whole.fault, sharded.fault) << "seed " << seed;
  }
}

TEST(FaultRuntime, NonDesDriversRejectFaultSpecs) {
  for (const SimDriverKind driver :
       {SimDriverKind::PrefetchOnly, SimDriverKind::PrefetchCache,
        SimDriverKind::Scenario}) {
    SimSpec spec;
    spec.driver = driver;
    spec.fault.fail_rate = 0.1;
    EXPECT_THROW(run_sim(spec), std::invalid_argument);
  }
}

TEST(FaultRuntime, CsvRowCarriesFaultColumns) {
  SimSpec spec = des_spec(SimDriverKind::NetsimDes);
  spec.fault.fail_rate = 0.5;
  spec.fault.retry.max_attempts = 2;
  const SimResult res = run_sim(spec);
  std::ostringstream os;
  CsvWriter writer(os);
  writer.row(sim_csv_header());
  append_sim_csv_row(writer, 0, spec, res);
  const std::string doc = os.str();
  const std::string header = doc.substr(0, doc.find('\n'));
  const std::string row = doc.substr(doc.find('\n') + 1);
  auto col = [&](const std::string& name) {
    std::size_t idx = 0;
    std::istringstream hs(header);
    for (std::string cell; std::getline(hs, cell, ',');
         ++idx) {
      if (cell == name) {
        std::istringstream rs(row);
        std::string value;
        for (std::size_t i = 0; i <= idx; ++i) {
          std::getline(rs, value, ',');
        }
        return value;
      }
    }
    ADD_FAILURE() << "column " << name << " missing";
    return std::string();
  };
  EXPECT_EQ(col("fail_rate"), "0.5");
  EXPECT_EQ(col("retry_max"), "2");
  EXPECT_EQ(col("failed"),
            std::to_string(res.fault.failed_transfers));
  EXPECT_EQ(col("fault_retries"), std::to_string(res.fault.retries));
  EXPECT_EQ(col("abandoned"), std::to_string(res.fault.abandoned));
}

}  // namespace
}  // namespace skp
