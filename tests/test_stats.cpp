#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace skp {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(OnlineStats, KnownMeanVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(OnlineStats, MinMaxTracking) {
  OnlineStats s;
  for (double x : {3.0, -1.0, 10.0, 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(OnlineStats, SumMatches) {
  OnlineStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.sum(), 5050.0, 1e-9);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats a, b, all;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats c;
  c.merge(a);
  EXPECT_DOUBLE_EQ(c.mean(), mean);
}

TEST(OnlineStats, Ci95ShrinksWithSamples) {
  OnlineStats small, large;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) small.add(rng.uniform(0, 1));
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform(0, 1));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(BinnedMeans, RejectsInvertedRange) {
  EXPECT_THROW(BinnedMeans(5, 4), std::invalid_argument);
}

TEST(BinnedMeans, BinsByInteger) {
  BinnedMeans bm(1, 10);
  bm.add(3, 1.0);
  bm.add(3, 3.0);
  bm.add(7, 10.0);
  EXPECT_DOUBLE_EQ(bm.bin(3).mean(), 2.0);
  EXPECT_DOUBLE_EQ(bm.bin(7).mean(), 10.0);
  EXPECT_EQ(bm.bin(5).count(), 0u);
}

TEST(BinnedMeans, OutOfRangeThrows) {
  BinnedMeans bm(1, 10);
  EXPECT_THROW(bm.add(0, 1.0), std::invalid_argument);
  EXPECT_THROW(bm.add(11, 1.0), std::invalid_argument);
  EXPECT_THROW(bm.bin(0), std::invalid_argument);
}

TEST(BinnedMeans, SeriesSkipsEmptyBins) {
  BinnedMeans bm(1, 5);
  bm.add(2, 1.0);
  bm.add(4, 2.0);
  const auto s = bm.series();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0].first, 2.0);
  EXPECT_DOUBLE_EQ(s[0].second, 1.0);
  EXPECT_DOUBLE_EQ(s[1].first, 4.0);
  EXPECT_DOUBLE_EQ(s[1].second, 2.0);
}

TEST(BinnedMeans, MergeCombinesBins) {
  BinnedMeans a(1, 5), b(1, 5);
  a.add(2, 1.0);
  b.add(2, 3.0);
  b.add(3, 5.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.bin(2).mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.bin(3).mean(), 5.0);
}

TEST(BinnedMeans, MergeRangeMismatchThrows) {
  BinnedMeans a(1, 5), b(1, 6);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, RequiresValidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, CountsIntoBuckets) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(5.6);
  h.add(9.99);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(5), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflowClamped) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
}

TEST(Histogram, BucketEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, QuantileApproximatesUniform) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) h.add(rng.next_double());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, QuantileRejectsOutOfRange) {
  Histogram h(0.0, 1.0, 10);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.1), std::invalid_argument);
}

TEST(QuantileSorted, ExactOnSmallSample) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.0);
}

TEST(QuantileSorted, InterpolatesBetweenPoints) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.3), 3.0);
}

TEST(QuantileSorted, RejectsEmpty) {
  const std::vector<double> v;
  EXPECT_THROW(quantile_sorted(v, 0.5), std::invalid_argument);
}

TEST(Summarize, MatchesHandComputation) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0, 5.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Summarize, EmptyInput) {
  const std::vector<double> v;
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg(y.rbegin(), y.rend());
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Pearson, DegenerateSeriesIsZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, LengthMismatchThrows) {
  const std::vector<double> x{1, 2};
  const std::vector<double> y{1, 2, 3};
  EXPECT_THROW(pearson(x, y), std::invalid_argument);
}

}  // namespace
}  // namespace skp
