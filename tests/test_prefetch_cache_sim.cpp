#include "sim/prefetch_cache.hpp"

#include <gtest/gtest.h>

namespace skp {
namespace {

PrefetchCacheConfig quick(PrefetchPolicy policy,
                          SubArbitration sub = SubArbitration::None) {
  PrefetchCacheConfig cfg;
  cfg.source.n_states = 30;
  cfg.source.out_degree_lo = 4;
  cfg.source.out_degree_hi = 8;
  cfg.cache_size = 6;
  cfg.policy = policy;
  cfg.sub = sub;
  cfg.requests = 3000;
  cfg.seed = 11;
  return cfg;
}

TEST(PrefetchCacheSim, DeterministicInSeed) {
  const auto a = run_prefetch_cache(quick(PrefetchPolicy::SKP));
  const auto b = run_prefetch_cache(quick(PrefetchPolicy::SKP));
  EXPECT_DOUBLE_EQ(a.metrics.mean_access_time(),
                   b.metrics.mean_access_time());
  EXPECT_EQ(a.metrics.hits, b.metrics.hits);
  EXPECT_EQ(a.metrics.demand_fetches, b.metrics.demand_fetches);
}

TEST(PrefetchCacheSim, RequestCountHonored) {
  auto cfg = quick(PrefetchPolicy::None);
  cfg.requests = 777;
  const auto res = run_prefetch_cache(cfg);
  EXPECT_EQ(res.metrics.requests, 777u);
}

TEST(PrefetchCacheSim, WarmupExcludedFromMetrics) {
  auto cfg = quick(PrefetchPolicy::SKP);
  cfg.requests = 1000;
  cfg.warmup = 400;
  const auto res = run_prefetch_cache(cfg);
  EXPECT_EQ(res.metrics.requests, 600u);
}

TEST(PrefetchCacheSim, NoPolicyNeverPrefetches) {
  const auto res = run_prefetch_cache(quick(PrefetchPolicy::None));
  EXPECT_EQ(res.metrics.prefetch_fetches, 0u);
  EXPECT_GT(res.metrics.demand_fetches, 0u);
}

TEST(PrefetchCacheSim, PerfectDominatesEverything) {
  const double perfect =
      run_prefetch_cache(quick(PrefetchPolicy::Perfect))
          .metrics.mean_access_time();
  const double skp = run_prefetch_cache(quick(PrefetchPolicy::SKP))
                         .metrics.mean_access_time();
  const double none = run_prefetch_cache(quick(PrefetchPolicy::None))
                          .metrics.mean_access_time();
  EXPECT_LE(perfect, skp + 1e-9);
  EXPECT_LE(perfect, none + 1e-9);
}

TEST(PrefetchCacheSim, SkpBeatsNoPrefetch) {
  const double skp = run_prefetch_cache(quick(PrefetchPolicy::SKP))
                         .metrics.mean_access_time();
  const double none = run_prefetch_cache(quick(PrefetchPolicy::None))
                          .metrics.mean_access_time();
  EXPECT_LT(skp, none);
}

TEST(PrefetchCacheSim, BiggerCacheHelps) {
  auto small = quick(PrefetchPolicy::SKP);
  small.cache_size = 2;
  auto large = quick(PrefetchPolicy::SKP);
  large.cache_size = 25;
  const double t_small =
      run_prefetch_cache(small).metrics.mean_access_time();
  const double t_large =
      run_prefetch_cache(large).metrics.mean_access_time();
  EXPECT_LT(t_large, t_small);
}

TEST(PrefetchCacheSim, FullCoverageCacheMakesHitsCheap) {
  // Cache as large as the catalog: after warmup nearly everything hits.
  auto cfg = quick(PrefetchPolicy::SKP);
  cfg.cache_size = cfg.source.n_states;
  cfg.requests = 4000;
  cfg.warmup = 2000;
  const auto res = run_prefetch_cache(cfg);
  EXPECT_GT(res.metrics.hit_rate(), 0.95);
}

TEST(PrefetchCacheSim, SubArbitrationChangesOutcome) {
  const auto plain =
      run_prefetch_cache(quick(PrefetchPolicy::SKP, SubArbitration::None));
  const auto ds =
      run_prefetch_cache(quick(PrefetchPolicy::SKP, SubArbitration::DS));
  // Different victim choices must perturb the trajectory; exact values are
  // workload-dependent but the runs must not be identical.
  EXPECT_NE(plain.metrics.hits, ds.metrics.hits);
}

TEST(PrefetchCacheSim, PredictorModeRuns) {
  auto cfg = quick(PrefetchPolicy::SKP);
  cfg.predictor = PredictorKind::Markov1;
  cfg.requests = 1500;
  const auto res = run_prefetch_cache(cfg);
  EXPECT_EQ(res.metrics.requests, 1500u);
  EXPECT_GT(res.metrics.prefetch_fetches, 0u);
}

TEST(PrefetchCacheSim, OracleBeatsColdPredictorEarly) {
  auto oracle = quick(PrefetchPolicy::SKP);
  oracle.requests = 2000;
  auto learned = oracle;
  learned.predictor = PredictorKind::Markov1;
  const double t_oracle =
      run_prefetch_cache(oracle).metrics.mean_access_time();
  const double t_learned =
      run_prefetch_cache(learned).metrics.mean_access_time();
  EXPECT_LE(t_oracle, t_learned + 0.5);
}

TEST(PrefetchCacheSim, ThresholdReducesNetworkUsage) {
  auto eager = quick(PrefetchPolicy::SKP);
  eager.requests = 2000;
  auto frugal = eager;
  frugal.min_profit_threshold = 3.0;
  const auto res_eager = run_prefetch_cache(eager);
  const auto res_frugal = run_prefetch_cache(frugal);
  EXPECT_LT(res_frugal.metrics.network_time_per_request(),
            res_eager.metrics.network_time_per_request());
}

TEST(PrefetchCacheSim, AccessTimesNonNegative) {
  const auto res = run_prefetch_cache(quick(PrefetchPolicy::SKP));
  EXPECT_GE(res.metrics.access_time.min(), 0.0);
}

TEST(PrefetchCacheSim, CacheSizeValidation) {
  auto cfg = quick(PrefetchPolicy::SKP);
  cfg.cache_size = 0;
  EXPECT_THROW(run_prefetch_cache(cfg), std::invalid_argument);
}

TEST(PrefetchCacheSim, SharedSourceOverloadUsesCallerChain) {
  auto cfg = quick(PrefetchPolicy::SKP);
  Rng build(cfg.seed);
  MarkovSource source(cfg.source, build);
  Rng walk = build.split(0x57a1f);
  source.teleport(0);
  const auto via_overload = run_prefetch_cache(cfg, source, walk);
  const auto via_config = run_prefetch_cache(cfg);
  EXPECT_DOUBLE_EQ(via_overload.metrics.mean_access_time(),
                   via_config.metrics.mean_access_time());
}

TEST(PredictorKindNames, Stable) {
  EXPECT_STREQ(to_string(PredictorKind::Oracle), "oracle");
  EXPECT_STREQ(to_string(PredictorKind::Markov1), "markov1");
  EXPECT_STREQ(to_string(PredictorKind::Ppm), "ppm");
  EXPECT_STREQ(to_string(PredictorKind::DependencyWindow), "depgraph");
}

}  // namespace
}  // namespace skp
