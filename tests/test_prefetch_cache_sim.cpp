#include "sim/prefetch_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <iterator>

namespace skp {
namespace {

PrefetchCacheConfig quick(PrefetchPolicy policy,
                          SubArbitration sub = SubArbitration::None) {
  PrefetchCacheConfig cfg;
  cfg.source.n_states = 30;
  cfg.source.out_degree_lo = 4;
  cfg.source.out_degree_hi = 8;
  cfg.cache_size = 6;
  cfg.policy = policy;
  cfg.sub = sub;
  cfg.requests = 3000;
  cfg.seed = 11;
  return cfg;
}

TEST(PrefetchCacheSim, DeterministicInSeed) {
  const auto a = run_prefetch_cache(quick(PrefetchPolicy::SKP));
  const auto b = run_prefetch_cache(quick(PrefetchPolicy::SKP));
  EXPECT_DOUBLE_EQ(a.metrics.mean_access_time(),
                   b.metrics.mean_access_time());
  EXPECT_EQ(a.metrics.hits, b.metrics.hits);
  EXPECT_EQ(a.metrics.demand_fetches, b.metrics.demand_fetches);
}

TEST(PrefetchCacheSim, RequestCountHonored) {
  auto cfg = quick(PrefetchPolicy::None);
  cfg.requests = 777;
  const auto res = run_prefetch_cache(cfg);
  EXPECT_EQ(res.metrics.requests, 777u);
}

TEST(PrefetchCacheSim, WarmupExcludedFromMetrics) {
  auto cfg = quick(PrefetchPolicy::SKP);
  cfg.requests = 1000;
  cfg.warmup = 400;
  const auto res = run_prefetch_cache(cfg);
  EXPECT_EQ(res.metrics.requests, 600u);
}

TEST(PrefetchCacheSim, NoPolicyNeverPrefetches) {
  const auto res = run_prefetch_cache(quick(PrefetchPolicy::None));
  EXPECT_EQ(res.metrics.prefetch_fetches, 0u);
  EXPECT_GT(res.metrics.demand_fetches, 0u);
}

TEST(PrefetchCacheSim, PerfectDominatesEverything) {
  const double perfect =
      run_prefetch_cache(quick(PrefetchPolicy::Perfect))
          .metrics.mean_access_time();
  const double skp = run_prefetch_cache(quick(PrefetchPolicy::SKP))
                         .metrics.mean_access_time();
  const double none = run_prefetch_cache(quick(PrefetchPolicy::None))
                          .metrics.mean_access_time();
  EXPECT_LE(perfect, skp + 1e-9);
  EXPECT_LE(perfect, none + 1e-9);
}

TEST(PrefetchCacheSim, SkpBeatsNoPrefetch) {
  const double skp = run_prefetch_cache(quick(PrefetchPolicy::SKP))
                         .metrics.mean_access_time();
  const double none = run_prefetch_cache(quick(PrefetchPolicy::None))
                          .metrics.mean_access_time();
  EXPECT_LT(skp, none);
}

TEST(PrefetchCacheSim, BiggerCacheHelps) {
  auto small = quick(PrefetchPolicy::SKP);
  small.cache_size = 2;
  auto large = quick(PrefetchPolicy::SKP);
  large.cache_size = 25;
  const double t_small =
      run_prefetch_cache(small).metrics.mean_access_time();
  const double t_large =
      run_prefetch_cache(large).metrics.mean_access_time();
  EXPECT_LT(t_large, t_small);
}

TEST(PrefetchCacheSim, FullCoverageCacheMakesHitsCheap) {
  // Cache as large as the catalog: after warmup nearly everything hits.
  auto cfg = quick(PrefetchPolicy::SKP);
  cfg.cache_size = cfg.source.n_states;
  cfg.requests = 4000;
  cfg.warmup = 2000;
  const auto res = run_prefetch_cache(cfg);
  EXPECT_GT(res.metrics.hit_rate(), 0.95);
}

TEST(PrefetchCacheSim, SubArbitrationChangesOutcome) {
  const auto plain =
      run_prefetch_cache(quick(PrefetchPolicy::SKP, SubArbitration::None));
  const auto ds =
      run_prefetch_cache(quick(PrefetchPolicy::SKP, SubArbitration::DS));
  // Different victim choices must perturb the trajectory; exact values are
  // workload-dependent but the runs must not be identical.
  EXPECT_NE(plain.metrics.hits, ds.metrics.hits);
}

TEST(PrefetchCacheSim, PredictorModeRuns) {
  auto cfg = quick(PrefetchPolicy::SKP);
  cfg.predictor = PredictorKind::Markov1;
  cfg.requests = 1500;
  const auto res = run_prefetch_cache(cfg);
  EXPECT_EQ(res.metrics.requests, 1500u);
  EXPECT_GT(res.metrics.prefetch_fetches, 0u);
}

TEST(PrefetchCacheSim, OracleBeatsColdPredictorEarly) {
  auto oracle = quick(PrefetchPolicy::SKP);
  oracle.requests = 2000;
  auto learned = oracle;
  learned.predictor = PredictorKind::Markov1;
  const double t_oracle =
      run_prefetch_cache(oracle).metrics.mean_access_time();
  const double t_learned =
      run_prefetch_cache(learned).metrics.mean_access_time();
  EXPECT_LE(t_oracle, t_learned + 0.5);
}

TEST(PrefetchCacheSim, ThresholdReducesNetworkUsage) {
  auto eager = quick(PrefetchPolicy::SKP);
  eager.requests = 2000;
  auto frugal = eager;
  frugal.min_profit_threshold = 3.0;
  const auto res_eager = run_prefetch_cache(eager);
  const auto res_frugal = run_prefetch_cache(frugal);
  EXPECT_LT(res_frugal.metrics.network_time_per_request(),
            res_eager.metrics.network_time_per_request());
}

TEST(PrefetchCacheSim, AccessTimesNonNegative) {
  const auto res = run_prefetch_cache(quick(PrefetchPolicy::SKP));
  EXPECT_GE(res.metrics.access_time.min(), 0.0);
}

TEST(PrefetchCacheSim, CacheSizeValidation) {
  auto cfg = quick(PrefetchPolicy::SKP);
  cfg.cache_size = 0;
  EXPECT_THROW(run_prefetch_cache(cfg), std::invalid_argument);
}

TEST(PrefetchCacheSim, SharedSourceOverloadUsesCallerChain) {
  auto cfg = quick(PrefetchPolicy::SKP);
  Rng build(cfg.seed);
  MarkovSource source(cfg.source, build);
  Rng walk = build.split(0x57a1f);
  source.teleport(0);
  const auto via_overload = run_prefetch_cache(cfg, source, walk);
  const auto via_config = run_prefetch_cache(cfg);
  EXPECT_DOUBLE_EQ(via_overload.metrics.mean_access_time(),
                   via_config.metrics.mean_access_time());
}

TEST(PredictorKindNames, Stable) {
  EXPECT_STREQ(to_string(PredictorKind::Oracle), "oracle");
  EXPECT_STREQ(to_string(PredictorKind::Markov1), "markov1");
  EXPECT_STREQ(to_string(PredictorKind::Ppm), "ppm");
  EXPECT_STREQ(to_string(PredictorKind::DependencyWindow), "depgraph");
}

// ---- Fixed-seed equivalence lock ----------------------------------------
//
// Pins every simulator counter bit-for-bit at a fixed seed, across all
// policies, predictors, and both cache kinds. This is the safety net for
// hot-path refactors (borrowed instance views, scratch-buffer reuse, loop
// reordering): such changes must not move a single metric, so any drift
// here is a real behavior change, not noise. The doubles are written with
// 17 significant digits (round-trip exact for IEEE doubles).
//
// Refresh after an INTENTIONAL behavior change:
//   ./build/tests/test_prefetch_cache_sim --gtest_also_run_disabled_tests
//       --gtest_filter='*PrintEquivalenceTable*'   (one command line)
// and paste the emitted rows over kEquivalence below.

struct EquivCase {
  const char* name;
  bool sized;  // false = SlotCache protocol, true = SizedCache protocol
  PrefetchPolicy policy;
  SubArbitration sub;
  PredictorKind predictor;
  std::size_t lookahead;
  double min_profit;
  double size_per_r;  // sized only: 0 = uniform 15.5-unit items
  bool strict_ties;
};

const EquivCase kEquivCases[] = {
    // clang-format off
    {"slot_none",      false, PrefetchPolicy::None,    SubArbitration::None, PredictorKind::Oracle, 1, 0.0, 1.0, false},
    {"slot_kp",        false, PrefetchPolicy::KP,      SubArbitration::None, PredictorKind::Oracle, 1, 0.0, 1.0, false},
    {"slot_skp",       false, PrefetchPolicy::SKP,     SubArbitration::None, PredictorKind::Oracle, 1, 0.0, 1.0, false},
    {"slot_skp_lfu",   false, PrefetchPolicy::SKP,     SubArbitration::LFU,  PredictorKind::Oracle, 1, 0.0, 1.0, false},
    {"slot_skp_ds",    false, PrefetchPolicy::SKP,     SubArbitration::DS,   PredictorKind::Oracle, 1, 0.0, 1.0, false},
    {"slot_perfect",   false, PrefetchPolicy::Perfect, SubArbitration::None, PredictorKind::Oracle, 1, 0.0, 1.0, false},
    {"slot_strict",    false, PrefetchPolicy::SKP,     SubArbitration::None, PredictorKind::Oracle, 1, 0.0, 1.0, true},
    {"slot_markov1",   false, PrefetchPolicy::SKP,     SubArbitration::None, PredictorKind::Markov1, 1, 0.0, 1.0, false},
    {"slot_ppm",       false, PrefetchPolicy::SKP,     SubArbitration::None, PredictorKind::Ppm, 1, 0.0, 1.0, false},
    {"slot_lz78",      false, PrefetchPolicy::SKP,     SubArbitration::None, PredictorKind::Lz78, 1, 0.0, 1.0, false},
    {"slot_depgraph",  false, PrefetchPolicy::SKP,     SubArbitration::None, PredictorKind::DependencyWindow, 1, 0.0, 1.0, false},
    {"slot_lookahead", false, PrefetchPolicy::SKP,     SubArbitration::None, PredictorKind::Oracle, 3, 0.0, 1.0, false},
    {"slot_threshold", false, PrefetchPolicy::SKP,     SubArbitration::None, PredictorKind::Oracle, 1, 2.0, 1.0, false},
    {"sized_skp_ds",   true,  PrefetchPolicy::SKP,     SubArbitration::DS,   PredictorKind::Oracle, 1, 0.0, 1.0, false},
    {"sized_uniform",  true,  PrefetchPolicy::SKP,     SubArbitration::None, PredictorKind::Oracle, 1, 0.0, 0.0, false},
    {"sized_kp_lfu",   true,  PrefetchPolicy::KP,      SubArbitration::LFU,  PredictorKind::Oracle, 1, 0.0, 1.0, false},
    {"sized_perfect",  true,  PrefetchPolicy::Perfect, SubArbitration::None, PredictorKind::Oracle, 1, 0.0, 1.0, false},
    // clang-format on
};

PrefetchCacheResult run_equiv_case(const EquivCase& c) {
  if (c.sized) {
    SizedExperimentConfig cfg;
    cfg.source.n_states = 30;
    cfg.source.out_degree_lo = 4;
    cfg.source.out_degree_hi = 8;
    cfg.capacity = 90.0;
    cfg.size_per_r = c.size_per_r;
    cfg.size_lo = cfg.size_hi = 15.5;
    cfg.policy = c.policy;
    cfg.sub = c.sub;
    cfg.strict_ties = c.strict_ties;
    cfg.requests = 1500;
    cfg.seed = 11;
    return run_prefetch_cache_sized(cfg);
  }
  auto cfg = quick(c.policy, c.sub);
  cfg.predictor = c.predictor;
  cfg.lookahead_horizon = c.lookahead;
  cfg.min_profit_threshold = c.min_profit;
  cfg.strict_ties = c.strict_ties;
  cfg.requests = 2000;
  return run_prefetch_cache(cfg);
}

struct EquivRow {
  const char* name;
  std::uint64_t hits, demand, prefetch, wasted, nodes, over;
  double mean_T, net_time;
};

const EquivRow kEquivalence[] = {
    // clang-format off
    {"slot_none", 483, 1517, 0, 0, 0, 313, 11.218500000000015, 22437},
    {"slot_kp", 1540, 460, 6059, 4581, 18155, 312, 4.2899999999999956, 86056},
    {"slot_skp", 1492, 388, 6257, 4679, 8878, 222, 3.6070000000000024, 90990},
    {"slot_skp_lfu", 1497, 387, 6165, 4624, 8946, 229, 3.6485000000000043, 89485},
    {"slot_skp_ds", 1523, 372, 6418, 4864, 9107, 227, 3.3630000000000004, 89163},
    {"slot_perfect", 1686, 0, 1597, 0, 0, 122, 1.2900000000000005, 22851},
    {"slot_strict", 1492, 388, 6257, 4679, 8878, 222, 3.6070000000000024, 90990},
    {"slot_markov1", 1411, 471, 5547, 4128, 19699, 218, 4.1320000000000006, 81233},
    {"slot_ppm", 1412, 527, 5646, 4285, 18818, 256, 4.1510000000000096, 83471},
    {"slot_lz78", 923, 1053, 3563, 2856, 51142, 252, 6.5534999999999988, 63943},
    {"slot_depgraph", 1331, 660, 5773, 4452, 40848, 233, 4.3340000000000076, 95159},
    {"slot_lookahead", 1451, 543, 5130, 3837, 52517, 232, 3.160499999999999, 85238},
    {"slot_threshold", 1042, 816, 2476, 1574, 2898, 188, 4.5220000000000038, 57113},
    {"sized_skp_ds", 1121, 297, 4590, 3451, 6821, 169, 3.7333333333333316, 65096},
    {"sized_uniform", 1090, 322, 4721, 3558, 7078, 175, 3.859333333333332, 69992},
    {"sized_kp_lfu", 1154, 346, 4081, 3117, 12737, 233, 4.3813333333333331, 60095},
    {"sized_perfect", 1260, 0, 1183, 0, 0, 84, 1.2866666666666653, 17486},
    // clang-format on
};

// The tentpole claim of the plan-memoization subsystem: with the plan
// cache on (the default used by every kEquivCase above) each simulator
// counter is bit-identical to the uncached run, across every policy,
// predictor, sub-arbitration, and both cache kinds. Also asserts the
// cache is actually exercised where it can be: oracle mode without
// sub-arbitration must produce cross-request hits, while volatile
// contexts (predictors, LFU/DS) must be all-miss by generation design.
TEST(PrefetchCacheEquivalence, PlanCacheOnOffBitIdentical) {
  for (const EquivCase& c : kEquivCases) {
    const PrefetchCacheResult on = run_equiv_case(c);

    PrefetchCacheResult off;
    if (c.sized) {
      SizedExperimentConfig cfg;
      cfg.source.n_states = 30;
      cfg.source.out_degree_lo = 4;
      cfg.source.out_degree_hi = 8;
      cfg.capacity = 90.0;
      cfg.size_per_r = c.size_per_r;
      cfg.size_lo = cfg.size_hi = 15.5;
      cfg.policy = c.policy;
      cfg.sub = c.sub;
      cfg.strict_ties = c.strict_ties;
      cfg.requests = 1500;
      cfg.seed = 11;
      cfg.use_plan_cache = false;
      off = run_prefetch_cache_sized(cfg);
    } else {
      auto cfg = quick(c.policy, c.sub);
      cfg.predictor = c.predictor;
      cfg.lookahead_horizon = c.lookahead;
      cfg.min_profit_threshold = c.min_profit;
      cfg.strict_ties = c.strict_ties;
      cfg.requests = 2000;
      cfg.use_plan_cache = false;
      off = run_prefetch_cache(cfg);
    }

    EXPECT_EQ(on.metrics.hits, off.metrics.hits) << c.name;
    EXPECT_EQ(on.metrics.demand_fetches, off.metrics.demand_fetches)
        << c.name;
    EXPECT_EQ(on.metrics.prefetch_fetches, off.metrics.prefetch_fetches)
        << c.name;
    EXPECT_EQ(on.metrics.wasted_prefetches, off.metrics.wasted_prefetches)
        << c.name;
    EXPECT_EQ(on.metrics.solver_nodes, off.metrics.solver_nodes) << c.name;
    EXPECT_EQ(on.over_viewing_time, off.over_viewing_time) << c.name;
    EXPECT_DOUBLE_EQ(on.metrics.mean_access_time(),
                     off.metrics.mean_access_time())
        << c.name;
    EXPECT_DOUBLE_EQ(on.metrics.network_time, off.metrics.network_time)
        << c.name;

    EXPECT_EQ(off.plan_cache.plans.lookups(), 0u) << c.name;
    EXPECT_EQ(off.plan_cache.selections.lookups(), 0u) << c.name;
    const bool memoizable_policy = c.policy != PrefetchPolicy::None &&
                                   c.policy != PrefetchPolicy::Perfect;
    // Completed plans replay only when context beyond (state, cache set)
    // is static: oracle rows, no sub-arbitration.
    const bool plans_can_hit = memoizable_policy &&
                               c.predictor == PredictorKind::Oracle &&
                               c.sub == SubArbitration::None;
    if (plans_can_hit) {
      EXPECT_GT(on.plan_cache.plans.hits, 0u) << c.name;
    } else {
      EXPECT_EQ(on.plan_cache.plans.hits, 0u) << c.name;
    }
    // Solver selections never read frequencies, so they replay under any
    // sub-arbitration — only learned predictors retire them. Lookahead
    // blends widen the support to nearly the whole catalog, where the
    // candidate set determines the cache set and the plan tier absorbs
    // every recurrence first, so no extra selection hits are guaranteed.
    const bool selections_can_hit = memoizable_policy &&
                                    c.predictor == PredictorKind::Oracle &&
                                    c.lookahead <= 1;
    if (selections_can_hit) {
      EXPECT_GT(on.plan_cache.selections.hits, 0u) << c.name;
    } else if (c.predictor != PredictorKind::Oracle) {
      EXPECT_EQ(on.plan_cache.selections.hits, 0u) << c.name;
    }
  }
}

TEST(PrefetchCacheEquivalence, MetricsBitIdenticalAtFixedSeed) {
  ASSERT_EQ(std::size(kEquivalence), std::size(kEquivCases))
      << "equivalence table out of date — rerun PrintEquivalenceTable";
  for (std::size_t i = 0; i < std::size(kEquivCases); ++i) {
    const EquivCase& c = kEquivCases[i];
    const EquivRow& g = kEquivalence[i];
    ASSERT_STREQ(c.name, g.name);
    const PrefetchCacheResult res = run_equiv_case(c);
    const auto& m = res.metrics;
    EXPECT_EQ(m.hits, g.hits) << c.name;
    EXPECT_EQ(m.demand_fetches, g.demand) << c.name;
    EXPECT_EQ(m.prefetch_fetches, g.prefetch) << c.name;
    EXPECT_EQ(m.wasted_prefetches, g.wasted) << c.name;
    EXPECT_EQ(m.solver_nodes, g.nodes) << c.name;
    EXPECT_EQ(res.over_viewing_time, g.over) << c.name;
    EXPECT_DOUBLE_EQ(m.mean_access_time(), g.mean_T) << c.name;
    EXPECT_DOUBLE_EQ(m.network_time, g.net_time) << c.name;
  }
}

// Manual refresh: prints the kEquivalence initializer rows (17 significant
// digits, round-trip exact). Disabled so ctest never depends on it.
TEST(PrefetchCacheEquivalence, DISABLED_PrintEquivalenceTable) {
  for (const EquivCase& c : kEquivCases) {
    const PrefetchCacheResult res = run_equiv_case(c);
    const auto& m = res.metrics;
    std::printf("    {\"%s\", %llu, %llu, %llu, %llu, %llu, %llu, %.17g, "
                "%.17g},\n",
                c.name, static_cast<unsigned long long>(m.hits),
                static_cast<unsigned long long>(m.demand_fetches),
                static_cast<unsigned long long>(m.prefetch_fetches),
                static_cast<unsigned long long>(m.wasted_prefetches),
                static_cast<unsigned long long>(m.solver_nodes),
                static_cast<unsigned long long>(res.over_viewing_time),
                m.mean_access_time(), m.network_time);
  }
}

}  // namespace
}  // namespace skp
