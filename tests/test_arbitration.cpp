#include "core/arbitration.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace skp {
namespace {

// small_instance profits: {5, 6, .75, .4}.

TEST(ChooseVictim, PicksMinimalPr) {
  const Instance inst = testing::small_instance();
  const std::vector<ItemId> cached{0, 1, 2, 3};
  const ItemId v = choose_victim(inst, cached, nullptr, {});
  EXPECT_EQ(v, 3);  // P*r = .4 is the smallest
}

TEST(ChooseVictim, SingleCandidate) {
  const Instance inst = testing::small_instance();
  const std::vector<ItemId> cached{1};
  EXPECT_EQ(choose_victim(inst, cached, nullptr, {}), 1);
}

TEST(ChooseVictim, EmptyCacheThrows) {
  const Instance inst = testing::small_instance();
  EXPECT_THROW(choose_victim(inst, {}, nullptr, {}),
               std::invalid_argument);
}

TEST(ChooseVictim, PrTieBrokenByLowestIdWithoutSub) {
  Instance inst;
  inst.P = {0.25, 0.25, 0.5};
  inst.r = {4.0, 4.0, 2.0};
  inst.v = 10.0;
  const std::vector<ItemId> cached{1, 0};  // both Pr = 1.0
  EXPECT_EQ(choose_victim(inst, cached, nullptr, {}), 0);
}

TEST(ChooseVictim, LfuSubArbitrationPrefersLeastFrequent) {
  Instance inst;
  inst.P = {0.25, 0.25, 0.5};
  inst.r = {4.0, 4.0, 2.0};
  inst.v = 10.0;
  FreqTracker freq(3);
  freq.record(0);
  freq.record(0);
  freq.record(1);
  ArbitrationConfig cfg;
  cfg.sub = SubArbitration::LFU;
  const std::vector<ItemId> cached{0, 1};
  EXPECT_EQ(choose_victim(inst, cached, &freq, cfg), 1);
}

TEST(ChooseVictim, DsSubArbitrationUsesDelaySavingProfit) {
  // Equal Pr and equal frequency, but different r: DS evicts the one with
  // the smaller freq * r (cheaper to re-fetch).
  Instance inst;
  inst.P = {0.2, 0.1, 0.7};
  inst.r = {5.0, 10.0, 1.0};  // Pr: 1.0, 1.0, .7
  inst.v = 10.0;
  FreqTracker freq(3);
  freq.record(0);
  freq.record(1);
  ArbitrationConfig cfg;
  cfg.sub = SubArbitration::DS;
  const std::vector<ItemId> cached{0, 1};
  // DS: item0 = 1*5 = 5, item1 = 1*10 = 10 -> evict 0.
  EXPECT_EQ(choose_victim(inst, cached, &freq, cfg), 0);
}

TEST(ChooseVictim, SubArbitrationOnlyAppliesToPrTies) {
  // Item with strictly smaller Pr wins regardless of frequency.
  const Instance inst = testing::small_instance();
  FreqTracker freq(4);
  for (int i = 0; i < 10; ++i) freq.record(3);  // very popular
  ArbitrationConfig cfg;
  cfg.sub = SubArbitration::LFU;
  const std::vector<ItemId> cached{2, 3};
  EXPECT_EQ(choose_victim(inst, cached, &freq, cfg), 3);  // min Pr still
}

TEST(ChooseVictim, SubArbitrationRequiresTracker) {
  const Instance inst = testing::small_instance();
  ArbitrationConfig cfg;
  cfg.sub = SubArbitration::DS;
  const std::vector<ItemId> cached{0, 1};
  EXPECT_THROW(choose_victim(inst, cached, nullptr, cfg),
               std::invalid_argument);
}

TEST(ChooseVictim, DsTieFallsBackToLowestId) {
  Instance inst;
  inst.P = {0.5, 0.5};
  inst.r = {4.0, 4.0};
  inst.v = 10.0;
  FreqTracker freq(2);  // both frequency 0
  ArbitrationConfig cfg;
  cfg.sub = SubArbitration::DS;
  const std::vector<ItemId> cached{1, 0};
  EXPECT_EQ(choose_victim(inst, cached, &freq, cfg), 0);
}

TEST(AdmitsPrefetch, ListingRuleAdmitsTies) {
  Instance inst;
  inst.P = {0.5, 0.5};
  inst.r = {4.0, 4.0};  // equal profits
  inst.v = 10.0;
  ArbitrationConfig listing;  // strict_ties = false
  EXPECT_TRUE(admits_prefetch(inst, 0, 1, listing));
}

TEST(AdmitsPrefetch, ProseRuleRejectsTies) {
  Instance inst;
  inst.P = {0.5, 0.5};
  inst.r = {4.0, 4.0};
  inst.v = 10.0;
  ArbitrationConfig prose;
  prose.strict_ties = true;
  EXPECT_FALSE(admits_prefetch(inst, 0, 1, prose));
}

TEST(AdmitsPrefetch, HigherProfitAlwaysAdmitted) {
  const Instance inst = testing::small_instance();
  for (const bool strict : {false, true}) {
    ArbitrationConfig cfg;
    cfg.strict_ties = strict;
    EXPECT_TRUE(admits_prefetch(inst, 0, 3, cfg));   // 5 vs .4
    EXPECT_FALSE(admits_prefetch(inst, 3, 0, cfg));  // .4 vs 5
  }
}

}  // namespace
}  // namespace skp
