// Property grid over the prefetch engine: every (policy, sub-arbitration,
// tie rule, cache fill) combination must uphold the planning invariants on
// random instances.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/access_model.hpp"
#include "core/prefetch_engine.hpp"
#include "test_util.hpp"

namespace skp {
namespace {

struct EngineParam {
  PrefetchPolicy policy;
  SubArbitration sub;
  bool strict_ties;
  std::size_t cache_fill;  // resident items out of capacity 4
};

std::string engine_param_name(
    const ::testing::TestParamInfo<EngineParam>& info) {
  const auto& p = info.param;
  return to_string(p.policy) + "_" + to_string(p.sub) +
         (p.strict_ties ? "_strict" : "_listing") + "_fill" +
         std::to_string(p.cache_fill);
}

class EngineGridTest : public ::testing::TestWithParam<EngineParam> {
 protected:
  EngineConfig config() const {
    EngineConfig cfg;
    cfg.policy = GetParam().policy;
    cfg.arbitration.sub = GetParam().sub;
    cfg.arbitration.strict_ties = GetParam().strict_ties;
    return cfg;
  }

  // Builds a random instance plus a partially filled cache + freq state.
  struct World {
    Instance inst;
    SlotCache cache;
    FreqTracker freq;
  };

  World make_world(Rng& rng) const {
    testing::RandomInstanceOptions opt;
    opt.n = 10;
    Instance inst = testing::random_instance(rng, opt);
    SlotCache cache(inst.n(), 4);
    FreqTracker freq(inst.n());
    std::vector<ItemId> ids(inst.n());
    std::iota(ids.begin(), ids.end(), 0);
    rng.shuffle(ids);
    for (std::size_t k = 0; k < GetParam().cache_fill; ++k) {
      cache.insert(ids[k]);
    }
    // Random access history for the sub-arbitration scores.
    for (int i = 0; i < 30; ++i) {
      freq.record(static_cast<ItemId>(rng.next_below(inst.n())));
    }
    return {std::move(inst), std::move(cache), std::move(freq)};
  }
};

TEST_P(EngineGridTest, PlansUpholdStructuralInvariants) {
  Rng rng(7000 + static_cast<std::uint64_t>(GetParam().cache_fill));
  const PrefetchEngine engine(config());
  for (int trial = 0; trial < 80; ++trial) {
    World w = make_world(rng);
    const auto oracle =
        static_cast<ItemId>(rng.next_below(w.inst.n()));
    const auto plan = engine.plan_with_cache(
        w.inst, w.cache, &w.freq,
        GetParam().policy == PrefetchPolicy::Perfect
            ? std::optional<ItemId>(oracle)
            : std::nullopt);

    // Fetches are unique, uncached, and form a valid Eq.-(1) list.
    std::set<ItemId> fetch_set(plan.fetch.begin(), plan.fetch.end());
    EXPECT_EQ(fetch_set.size(), plan.fetch.size());
    for (const ItemId f : plan.fetch) {
      EXPECT_FALSE(w.cache.contains(f));
    }
    EXPECT_TRUE(is_valid_prefetch_list(w.inst, plan.fetch));

    // Victims are distinct residents, never more than the fetches.
    std::set<ItemId> evict_set(plan.evict.begin(), plan.evict.end());
    EXPECT_EQ(evict_set.size(), plan.evict.size());
    EXPECT_LE(plan.evict.size(), plan.fetch.size());
    for (const ItemId d : plan.evict) {
      EXPECT_TRUE(w.cache.contains(d));
    }

    // Capacity is never exceeded after applying the plan.
    const std::size_t after =
        w.cache.size() - plan.evict.size() + plan.fetch.size();
    EXPECT_LE(after, w.cache.capacity());
  }
}

TEST_P(EngineGridTest, NonePolicyIsAlwaysEmpty) {
  if (GetParam().policy != PrefetchPolicy::None) GTEST_SKIP();
  Rng rng(7100);
  const PrefetchEngine engine(config());
  for (int trial = 0; trial < 40; ++trial) {
    World w = make_world(rng);
    const auto plan = engine.plan_with_cache(w.inst, w.cache, &w.freq);
    EXPECT_TRUE(plan.fetch.empty());
    EXPECT_TRUE(plan.evict.empty());
  }
}

TEST_P(EngineGridTest, PredictedGMatchesEq9ForExactSkp) {
  if (GetParam().policy != PrefetchPolicy::SKP) GTEST_SKIP();
  Rng rng(7200 + static_cast<std::uint64_t>(GetParam().cache_fill));
  const PrefetchEngine engine(config());
  for (int trial = 0; trial < 60; ++trial) {
    World w = make_world(rng);
    const auto plan = engine.plan_with_cache(w.inst, w.cache, &w.freq);
    if (plan.fetch.empty()) continue;
    EXPECT_NEAR(plan.predicted_g,
                access_improvement_cached(w.inst, plan.fetch, plan.evict,
                                          w.cache.contents()),
                1e-9);
  }
}

TEST_P(EngineGridTest, ThresholdMonotonicallyPrunes) {
  if (GetParam().policy == PrefetchPolicy::None) GTEST_SKIP();
  Rng rng(7300 + static_cast<std::uint64_t>(GetParam().cache_fill));
  for (int trial = 0; trial < 40; ++trial) {
    World w = make_world(rng);
    std::size_t prev_count = SIZE_MAX;
    for (const double th : {0.0, 1.0, 4.0, 16.0}) {
      EngineConfig cfg = config();
      cfg.min_profit_threshold = th;
      const PrefetchEngine engine(cfg);
      const auto plan = engine.plan_with_cache(
          w.inst, w.cache, &w.freq,
          GetParam().policy == PrefetchPolicy::Perfect
              ? std::optional<ItemId>(ItemId{0})
              : std::nullopt);
      // Every fetched item clears the threshold.
      for (const ItemId f : plan.fetch) {
        EXPECT_GE(w.inst.profit(f), th);
      }
      (void)prev_count;
      prev_count = plan.fetch.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineGridTest,
    ::testing::Values(
        EngineParam{PrefetchPolicy::None, SubArbitration::None, false, 2},
        EngineParam{PrefetchPolicy::KP, SubArbitration::None, false, 0},
        EngineParam{PrefetchPolicy::KP, SubArbitration::LFU, false, 4},
        EngineParam{PrefetchPolicy::SKP, SubArbitration::None, false, 0},
        EngineParam{PrefetchPolicy::SKP, SubArbitration::None, true, 4},
        EngineParam{PrefetchPolicy::SKP, SubArbitration::LFU, false, 2},
        EngineParam{PrefetchPolicy::SKP, SubArbitration::LFU, true, 3},
        EngineParam{PrefetchPolicy::SKP, SubArbitration::DS, false, 4},
        EngineParam{PrefetchPolicy::SKP, SubArbitration::DS, true, 1},
        EngineParam{PrefetchPolicy::Perfect, SubArbitration::None, false,
                    4},
        EngineParam{PrefetchPolicy::Perfect, SubArbitration::DS, false,
                    2}),
    engine_param_name);

// Sized-planner analogue of the structural grid.
class SizedEngineTest : public ::testing::Test {};

TEST(SizedEngineTest, SizedPlansRespectCapacityAndDisjointness) {
  Rng rng(7500);
  for (int trial = 0; trial < 120; ++trial) {
    testing::RandomInstanceOptions opt;
    opt.n = 10;
    const Instance inst = testing::random_instance(rng, opt);
    std::vector<double> sizes(inst.n());
    for (auto& s : sizes) s = rng.uniform(1.0, 8.0);
    const double capacity = 20.0;
    SizedCache cache(sizes, capacity);
    // Random prefill.
    std::vector<ItemId> ids(inst.n());
    std::iota(ids.begin(), ids.end(), 0);
    rng.shuffle(ids);
    for (const ItemId i : ids) {
      if (cache.fits(i) && rng.bernoulli(0.6)) cache.insert(i);
    }
    FreqTracker freq(inst.n());
    EngineConfig ecfg;
    ecfg.policy = PrefetchPolicy::SKP;
    ecfg.arbitration.sub = SubArbitration::DS;
    for (int i = 0; i < 20; ++i) {
      freq.record(static_cast<ItemId>(rng.next_below(inst.n())));
    }
    const PrefetchEngine engine(ecfg);
    const auto plan = engine.plan_with_sized_cache(inst, cache, &freq);

    double incoming = 0.0, outgoing = 0.0;
    for (const ItemId f : plan.fetch) {
      EXPECT_FALSE(cache.contains(f));
      incoming += cache.size_of(f);
    }
    for (const ItemId d : plan.evict) {
      EXPECT_TRUE(cache.contains(d));
      outgoing += cache.size_of(d);
    }
    EXPECT_LE(cache.used() - outgoing + incoming, capacity + 1e-9);
    EXPECT_TRUE(is_valid_prefetch_list(inst, plan.fetch));
  }
}

}  // namespace
}  // namespace skp
