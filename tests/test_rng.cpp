#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace skp {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 17.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 17.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextBelowApproximatelyUniform) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, UniformIntClosedRange) {
  Rng rng(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_int(1, 30);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 30);
    saw_lo |= (x == 1);
    saw_hi |= (x == 30);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(29);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialPositiveWithUnitMean) {
  Rng rng(41);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(1.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(Rng, ExponentialRateScales) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(47);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(53), p2(53);
  Rng a = p1.split(9);
  Rng b = p2.split(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(v);
  auto shuffled = v;
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, sorted);
}

TEST(Rng, ShuffleTrivialSizes) {
  Rng rng(61);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(67);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const auto before = v;
  rng.shuffle(v);
  EXPECT_NE(v, before);  // 50! permutations; identity is implausible
}

}  // namespace
}  // namespace skp
