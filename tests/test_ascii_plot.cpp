#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace skp {
namespace {

PlotOptions small_opts() {
  PlotOptions o;
  o.width = 20;
  o.height = 8;
  o.x_min = 0;
  o.x_max = 10;
  o.y_min = 0;
  o.y_max = 10;
  o.legend = false;
  return o;
}

TEST(AsciiPlot, RejectsTinyRaster) {
  PlotOptions o;
  o.width = 4;
  o.height = 2;
  EXPECT_THROW(render_plot({}, o), std::invalid_argument);
}

TEST(AsciiPlot, ContainsGlyphForPoint) {
  PlotSeries s{"s", '@', {{5.0, 5.0}}};
  const std::string out = render_plot({s}, small_opts());
  EXPECT_NE(out.find('@'), std::string::npos);
}

TEST(AsciiPlot, OmitsOutOfRangePoints) {
  PlotSeries s{"s", '@', {{50.0, 50.0}, {-5.0, 2.0}}};
  const std::string out = render_plot({s}, small_opts());
  EXPECT_EQ(out.find('@'), std::string::npos);
}

TEST(AsciiPlot, CornersLandInCorners) {
  PlotSeries s{"s", '#', {{0.0, 0.0}, {10.0, 10.0}}};
  auto opts = small_opts();
  const std::string out = render_plot({s}, opts);
  // Split rows; first raster row holds the y-max point, last the y-min.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const auto nl = out.find('\n', pos);
    lines.push_back(out.substr(pos, nl - pos));
    pos = nl + 1;
  }
  // Find the raster lines (they contain '|').
  std::vector<std::string> raster;
  for (const auto& l : lines) {
    if (l.find('|') != std::string::npos) raster.push_back(l);
  }
  ASSERT_EQ(raster.size(), opts.height);
  EXPECT_NE(raster.front().find('#'), std::string::npos);  // top = y max
  EXPECT_NE(raster.back().find('#'), std::string::npos);   // bottom = y min
}

TEST(AsciiPlot, LegendListsSeriesNames) {
  PlotSeries a{"alpha", 'a', {{1, 1}}};
  PlotSeries b{"beta", 'b', {{2, 2}}};
  auto opts = small_opts();
  opts.legend = true;
  const std::string out = render_plot({a, b}, opts);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
}

TEST(AsciiPlot, TitleRendered) {
  auto opts = small_opts();
  opts.title = "My Title";
  const std::string out = render_plot({}, opts);
  EXPECT_NE(out.find("My Title"), std::string::npos);
}

TEST(AsciiPlot, AutoRangeFromData) {
  PlotOptions o;
  o.width = 20;
  o.height = 8;
  o.legend = false;  // ranges left inverted -> derive from data
  PlotSeries s{"s", '*', {{100.0, 200.0}, {110.0, 220.0}}};
  const std::string out = render_plot({s}, o);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesStillRendersAxes) {
  const std::string out = render_plot({}, small_opts());
  EXPECT_NE(out.find('+'), std::string::npos);
  EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(AsciiPlot, ScatterWrapper) {
  const std::string out =
      render_scatter({{1.0, 1.0}, {2.0, 2.0}}, small_opts(), 'x');
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(AsciiPlot, LaterSeriesOverwrite) {
  PlotSeries a{"a", 'a', {{5.0, 5.0}}};
  PlotSeries b{"b", 'b', {{5.0, 5.0}}};
  const std::string out = render_plot({a, b}, small_opts());
  EXPECT_EQ(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

}  // namespace
}  // namespace skp
