#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace skp {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesCommas) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a,b", "c"});
  EXPECT_EQ(os.str(), "\"a,b\",c\n");
}

TEST(CsvWriter, EscapesQuotes) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"say \"hi\""});
  EXPECT_EQ(os.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines) {
  EXPECT_EQ(CsvWriter::quote("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, EmptyCellsPreserved) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"", "x", ""});
  EXPECT_EQ(os.str(), ",x,\n");
}

TEST(CsvWriter, RowOfMixedTypes) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row_of("label", 42, 2.5);
  EXPECT_EQ(os.str(), "label,42,2.5\n");
}

TEST(CsvWriter, MultipleRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"h1", "h2"});
  w.row_of(1, 2);
  w.row_of(3, 4);
  EXPECT_EQ(os.str(), "h1,h2\n1,2\n3,4\n");
}

TEST(OpenCsv, ThrowsOnBadPath) {
  EXPECT_THROW(open_csv("/nonexistent-dir/x.csv"), std::invalid_argument);
}

TEST(OpenCsv, WritesToTempFile) {
  const std::string path = ::testing::TempDir() + "/skp_csv_test.csv";
  {
    auto f = open_csv(path);
    CsvWriter w(f);
    w.row_of("x", 1);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,1");
}

}  // namespace
}  // namespace skp
