// Tests for the minimal JSON reader (util/json.hpp): value kinds, raw
// number preservation, ordered object members, escapes, and strict error
// behavior — the properties simctl's --spec lowering relies on.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace skp {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(JsonValue::parse("42").number_text(), "42");
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1.5e2").as_double(), -150.0);
}

TEST(Json, NumbersKeepRawLiteralText) {
  // The whole point of number_text(): a 64-bit seed or a decimal
  // threshold survives lowering to CLI flags without a double
  // round-trip.
  EXPECT_EQ(JsonValue::parse("18446744073709551615").number_text(),
            "18446744073709551615");
  EXPECT_EQ(JsonValue::parse("0.05").number_text(), "0.05");
  EXPECT_EQ(JsonValue::parse("-3e-7").number_text(), "-3e-7");
}

TEST(Json, ObjectMembersPreserveDocumentOrder) {
  const JsonValue doc =
      JsonValue::parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(doc.members().size(), 3u);
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.members()[2].first, "m");
  ASSERT_NE(doc.find("a"), nullptr);
  EXPECT_EQ(doc.find("a")->number_text(), "2");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, NestedContainersAndEscapes) {
  const JsonValue doc = JsonValue::parse(
      R"({"list": [1, "two", {"three": true}], "esc": "a\tb\"c\u0041"})");
  const JsonValue* list = doc.find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->items().size(), 3u);
  EXPECT_EQ(list->items()[0].number_text(), "1");
  EXPECT_EQ(list->items()[1].as_string(), "two");
  EXPECT_EQ(list->items()[2].find("three")->as_bool(), true);
  EXPECT_EQ(doc.find("esc")->as_string(), "a\tb\"cA");
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "01", "1.",
        "\"unterminated", "{\"a\":1} trailing", "[1 2]",
        "{\"dup\":1,\"dup\":2}", "\"bad\\q\"", "\"\\ud800\""}) {
    EXPECT_THROW(JsonValue::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(Json, TypeMismatchesThrow) {
  const JsonValue num = JsonValue::parse("1");
  EXPECT_THROW(num.as_bool(), std::invalid_argument);
  EXPECT_THROW(num.as_string(), std::invalid_argument);
  EXPECT_THROW(num.items(), std::invalid_argument);
  EXPECT_THROW(num.members(), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("\"s\"").number_text(),
               std::invalid_argument);
}

}  // namespace
}  // namespace skp
