#include "core/brute_force.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/access_model.hpp"
#include "test_util.hpp"

namespace skp {
namespace {

TEST(BruteForceSkp, EmptyBeatsAllNegativeOptions) {
  // v tiny, all items huge and improbable: best is to prefetch nothing.
  Instance inst;
  inst.P = {0.5, 0.5};
  inst.r = {100.0, 100.0};
  inst.v = 1.0;
  const BruteForceResult res = brute_force_skp(inst);
  EXPECT_TRUE(res.F.empty());
  EXPECT_DOUBLE_EQ(res.g, 0.0);
}

TEST(BruteForceSkp, ReturnedListConsistentWithG) {
  Rng rng(301);
  for (int trial = 0; trial < 100; ++trial) {
    testing::RandomInstanceOptions opt;
    opt.n = 8;
    const Instance inst = testing::random_instance(rng, opt);
    const BruteForceResult res = brute_force_skp(inst);
    if (res.F.empty()) continue;
    EXPECT_TRUE(is_valid_prefetch_list(inst, res.F));
    EXPECT_NEAR(res.g, access_improvement(inst, res.F), 1e-9);
  }
}

TEST(BruteForceSkp, MatchesPermutationEnumeration) {
  // The (subset, z) reduction must agree with raw permutation search.
  Rng rng(303);
  for (int trial = 0; trial < 40; ++trial) {
    testing::RandomInstanceOptions opt;
    opt.n = 6;
    opt.v_hi = 30.0;  // small v so stretches happen
    const Instance inst = testing::random_instance(rng, opt);
    const BruteForceResult subsets = brute_force_skp(inst);
    const BruteForceResult perms = brute_force_skp_permutations(inst);
    EXPECT_NEAR(subsets.g, perms.g, 1e-9) << "trial " << trial;
  }
}

TEST(BruteForceSkp, CanonicalIsSubsetOfFull) {
  Rng rng(305);
  for (int trial = 0; trial < 100; ++trial) {
    testing::RandomInstanceOptions opt;
    opt.n = 8;
    opt.v_hi = 25.0;
    const Instance inst = testing::random_instance(rng, opt);
    const BruteForceResult full = brute_force_skp(inst);
    const BruteForceResult canon = brute_force_skp_canonical(inst);
    EXPECT_GE(full.g, canon.g - 1e-12);
    if (!canon.F.empty()) {
      EXPECT_TRUE(is_canonically_sorted(inst, canon.F));
      EXPECT_TRUE(is_valid_prefetch_list(inst, canon.F));
    }
  }
}

TEST(BruteForceSkp, ThrowsOverItemCap) {
  Instance inst;
  inst.P.assign(30, 1.0 / 30);
  inst.r.assign(30, 1.0);
  inst.v = 5.0;
  EXPECT_THROW(brute_force_skp(inst, 1.0, 22), std::invalid_argument);
}

TEST(BruteForceSkp, SingleItemStretch) {
  Instance inst;
  inst.P = {1.0};
  inst.r = {10.0};
  inst.v = 4.0;
  const BruteForceResult res = brute_force_skp(inst);
  EXPECT_EQ(res.F, (PrefetchList{0}));
  EXPECT_DOUBLE_EQ(res.g, 4.0);  // 10 - 1 * 6
}

TEST(BruteForceSkp, CountsEvaluations) {
  const Instance inst = testing::small_instance();
  const BruteForceResult res = brute_force_skp(inst);
  EXPECT_GT(res.evaluated, 0u);
}

TEST(BruteForceKp, SimpleSelection) {
  const Instance inst = testing::small_instance();
  std::vector<ItemId> ids(inst.n());
  std::iota(ids.begin(), ids.end(), 0);
  const BruteForceResult res = brute_force_kp(inst, ids);
  EXPECT_DOUBLE_EQ(res.g, 5.0);  // {0} within v = 12
}

TEST(BruteForceKp, RespectsCapacityStrictly) {
  Rng rng(307);
  for (int trial = 0; trial < 50; ++trial) {
    testing::RandomInstanceOptions opt;
    opt.n = 8;
    const Instance inst = testing::random_instance(rng, opt);
    std::vector<ItemId> ids(inst.n());
    std::iota(ids.begin(), ids.end(), 0);
    const BruteForceResult res = brute_force_kp(inst, ids);
    double w = 0;
    for (ItemId i : res.F) w += inst.r[Instance::idx(i)];
    EXPECT_LE(w, inst.v + 1e-12);
  }
}

TEST(BruteForcePermutations, RespectsItemCap) {
  Instance inst;
  inst.P.assign(10, 0.1);
  inst.r.assign(10, 1.0);
  inst.v = 5.0;
  EXPECT_THROW(brute_force_skp_permutations(inst, 1.0, 8),
               std::invalid_argument);
}

}  // namespace
}  // namespace skp
