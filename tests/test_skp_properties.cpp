// Property-based validation of the SKP machinery against exhaustive
// search, across a parameter grid of catalog sizes, time regimes and
// probability shapes (TEST_P sweeps).
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "core/access_model.hpp"
#include "core/brute_force.hpp"
#include "core/kp_solver.hpp"
#include "core/skp_solver.hpp"
#include "test_util.hpp"

namespace skp {
namespace {

struct GridParam {
  std::size_t n;
  double v_hi;        // v ~ U(1, v_hi): small v forces stretch decisions
  ProbMethod method;
  bool integer_times;
};

std::string param_name(
    const ::testing::TestParamInfo<GridParam>& info) {
  const auto& p = info.param;
  std::string s = "n" + std::to_string(p.n) + "_v" +
                  std::to_string(static_cast<int>(p.v_hi)) + "_" +
                  to_string(p.method) + (p.integer_times ? "_int" : "_real");
  return s;
}

class SkpGridTest : public ::testing::TestWithParam<GridParam> {
 protected:
  Instance draw(Rng& rng) const {
    const auto& p = GetParam();
    testing::RandomInstanceOptions opt;
    opt.n = p.n;
    opt.v_lo = 1.0;
    opt.v_hi = p.v_hi;
    opt.method = p.method;
    opt.integer_times = p.integer_times;
    return testing::random_instance(rng, opt);
  }
};

TEST_P(SkpGridTest, ExactComplementMatchesCanonicalBruteForce) {
  // The Figure-3 search space is the canonical-order subspace; within it
  // the ExactComplement solver must find the optimum.
  Rng rng(1000 + GetParam().n);
  for (int trial = 0; trial < 60; ++trial) {
    const Instance inst = draw(rng);
    const SkpSolution sol = solve_skp(inst);
    const BruteForceResult bf = brute_force_skp_canonical(inst);
    EXPECT_NEAR(sol.g, bf.g, 1e-9)
        << "trial " << trial << " n=" << inst.n() << " v=" << inst.v;
  }
}

TEST_P(SkpGridTest, FullSpaceDominatesCanonical) {
  // The unrestricted (subset, z) space contains the canonical subspace, so
  // its optimum can only be larger (see DESIGN.md D8 for why it sometimes
  // strictly is).
  Rng rng(1500 + GetParam().n);
  for (int trial = 0; trial < 40; ++trial) {
    const Instance inst = draw(rng);
    const BruteForceResult full = brute_force_skp(inst);
    const BruteForceResult canon = brute_force_skp_canonical(inst);
    EXPECT_GE(full.g, canon.g - 1e-9);
  }
}

TEST_P(SkpGridTest, SolverGConsistentWithFormula) {
  Rng rng(2000 + GetParam().n);
  for (int trial = 0; trial < 60; ++trial) {
    const Instance inst = draw(rng);
    const SkpSolution sol = solve_skp(inst);
    const double formula =
        sol.F.empty() ? 0.0 : access_improvement(inst, sol.F);
    EXPECT_NEAR(sol.g, formula, 1e-9);
  }
}

TEST_P(SkpGridTest, PaperTailNeverBeatsExactTruth) {
  // The PaperTail rule may *report* an inflated g-hat, but the true g of
  // whatever list it returns can never exceed the exhaustive optimum.
  Rng rng(3000 + GetParam().n);
  for (int trial = 0; trial < 60; ++trial) {
    const Instance inst = draw(rng);
    SkpOptions opts;
    opts.delta_rule = DeltaRule::PaperTail;
    const SkpSolution sol = solve_skp(inst, opts);
    const double true_g =
        sol.F.empty() ? 0.0 : access_improvement(inst, sol.F);
    const BruteForceResult bf = brute_force_skp(inst);
    EXPECT_LE(true_g, bf.g + 1e-9);
  }
}

TEST_P(SkpGridTest, SkpDominatesKp) {
  Rng rng(4000 + GetParam().n);
  for (int trial = 0; trial < 60; ++trial) {
    const Instance inst = draw(rng);
    EXPECT_GE(solve_skp(inst).g, solve_kp_bb(inst).value - 1e-9);
  }
}

TEST_P(SkpGridTest, UpperBoundHolds) {
  Rng rng(5000 + GetParam().n);
  for (int trial = 0; trial < 60; ++trial) {
    const Instance inst = draw(rng);
    const double ub = skp_upper_bound(inst);
    const BruteForceResult bf = brute_force_skp(inst);
    EXPECT_GE(ub, bf.g - 1e-9);
  }
}

TEST_P(SkpGridTest, Theorem1MinProbabilityLast) {
  // When the optimal list stretches, its last element carries the minimal
  // probability among its members (Theorem 1).
  Rng rng(6000 + GetParam().n);
  for (int trial = 0; trial < 60; ++trial) {
    const Instance inst = draw(rng);
    const SkpSolution sol = solve_skp(inst);
    if (sol.F.size() < 2 || sol.stretch <= 0.0) continue;
    const double pz = inst.P[Instance::idx(sol.F.back())];
    for (ItemId i : sol.F) {
      EXPECT_GE(inst.P[Instance::idx(i)], pz - 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SkpGridTest,
    ::testing::Values(
        GridParam{2, 10.0, ProbMethod::Flat, false},
        GridParam{4, 10.0, ProbMethod::Flat, false},
        GridParam{4, 40.0, ProbMethod::Skewy, false},
        GridParam{6, 10.0, ProbMethod::Flat, true},
        GridParam{6, 60.0, ProbMethod::Skewy, true},
        GridParam{8, 20.0, ProbMethod::Flat, false},
        GridParam{8, 80.0, ProbMethod::Skewy, false},
        GridParam{10, 30.0, ProbMethod::Flat, true},
        GridParam{10, 100.0, ProbMethod::Skewy, false},
        GridParam{12, 50.0, ProbMethod::Flat, false},
        GridParam{12, 15.0, ProbMethod::Skewy, true},
        GridParam{14, 60.0, ProbMethod::Flat, false}),
    param_name);

// Degenerate shapes exercised separately from the random grid.

TEST(SkpEdgeCases, Theorem1ValidityGapCounterexample) {
  // DESIGN.md D8: Theorem 1's exchange argument assumes the swapped list
  // stays Eq.-(1)-valid. Counterexample: P = {.6, .4}, r = {10, 1}, v = 5.
  //   canonical space:  <0> with g = 6 - 5 = 1 is the best reachable;
  //   full space:       <1, 0> (z = 0, st = 6) has
  //                     g = 6.4 - (1 - .4) * 6 = 2.8 > 1,
  // yet z = 0 is the *max*-probability member — Theorem 1's conclusion
  // fails because the swap would produce the invalid list <0, 1>.
  Instance inst;
  inst.P = {0.6, 0.4};
  inst.r = {10.0, 1.0};
  inst.v = 5.0;
  const SkpSolution sol = solve_skp(inst);
  EXPECT_DOUBLE_EQ(sol.g, 1.0);
  EXPECT_EQ(sol.F, (PrefetchList{0}));
  const BruteForceResult canon = brute_force_skp_canonical(inst);
  EXPECT_DOUBLE_EQ(canon.g, 1.0);
  const BruteForceResult full = brute_force_skp(inst);
  EXPECT_DOUBLE_EQ(full.g, 2.8);
  EXPECT_EQ(full.F, (PrefetchList{1, 0}));
  // Permutation enumeration agrees with the (subset, z) reduction.
  const BruteForceResult perms = brute_force_skp_permutations(inst);
  EXPECT_DOUBLE_EQ(perms.g, 2.8);
}

TEST(SkpEdgeCases, AllItemsIdentical) {
  Instance inst;
  inst.P = {0.25, 0.25, 0.25, 0.25};
  inst.r = {6.0, 6.0, 6.0, 6.0};
  inst.v = 12.0;
  const SkpSolution sol = solve_skp(inst);
  const BruteForceResult bf = brute_force_skp(inst);
  EXPECT_NEAR(sol.g, bf.g, 1e-12);
}

TEST(SkpEdgeCases, OneDominantItem) {
  Instance inst;
  inst.P = {0.97, 0.01, 0.01, 0.01};
  inst.r = {25.0, 1.0, 1.0, 1.0};
  inst.v = 5.0;
  const SkpSolution sol = solve_skp(inst);
  const BruteForceResult bf = brute_force_skp(inst);
  EXPECT_NEAR(sol.g, bf.g, 1e-12);
  // The dominant item must be fetched despite the heavy stretch.
  ASSERT_FALSE(sol.F.empty());
  EXPECT_EQ(sol.F.front(), 0);
}

TEST(SkpEdgeCases, TinyProbabilitiesWithHugeRetrievals) {
  Instance inst;
  inst.P = {0.001, 0.001, 0.998};
  inst.r = {1000.0, 1000.0, 1.0};
  inst.v = 2.0;
  const SkpSolution sol = solve_skp(inst);
  const BruteForceResult bf = brute_force_skp(inst);
  EXPECT_NEAR(sol.g, bf.g, 1e-9);
  // Fetching item 2 (P=.998, r=1) within v=2 is clearly optimal.
  EXPECT_EQ(sol.F, (PrefetchList{2}));
}

TEST(SkpEdgeCases, ViewingTimeExactlyEqualsTotalRetrieval) {
  Instance inst;
  inst.P = {0.5, 0.5};
  inst.r = {5.0, 5.0};
  inst.v = 10.0;
  const SkpSolution sol = solve_skp(inst);
  EXPECT_EQ(sol.F.size(), 2u);
  EXPECT_DOUBLE_EQ(sol.stretch, 0.0);
  EXPECT_NEAR(sol.g, 5.0, 1e-12);
}

TEST(SkpEdgeCases, SubUnitMassCatalog) {
  // Cache-aware candidates: probabilities sum below 1.
  Instance inst;
  inst.P = {0.3, 0.2};
  inst.r = {8.0, 4.0};
  inst.v = 6.0;
  const SkpSolution sol = solve_skp(inst);
  const BruteForceResult bf = brute_force_skp(inst, 1.0);
  EXPECT_NEAR(sol.g, bf.g, 1e-12);
}

}  // namespace
}  // namespace skp
