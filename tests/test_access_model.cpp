#include "core/access_model.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "test_util.hpp"

namespace skp {
namespace {

// small_instance: P = {.5, .3, .15, .05}, r = {10, 20, 5, 8}, v = 12.

TEST(StretchTime, ZeroWhenWithinViewingTime) {
  const Instance inst = testing::small_instance();
  const PrefetchList F{0};  // r = 10 <= 12
  EXPECT_DOUBLE_EQ(stretch_time(inst, F), 0.0);
}

TEST(StretchTime, PositiveWhenExceeding) {
  const Instance inst = testing::small_instance();
  const PrefetchList F{0, 2};  // r = 15, v = 12
  EXPECT_DOUBLE_EQ(stretch_time(inst, F), 3.0);
}

TEST(StretchTime, EmptyListIsZero) {
  const Instance inst = testing::small_instance();
  EXPECT_DOUBLE_EQ(stretch_time(inst, PrefetchList{}), 0.0);
}

TEST(StretchTime, ExactFitIsZero) {
  Instance inst = testing::small_instance();
  inst.v = 15.0;
  const PrefetchList F{0, 2};
  EXPECT_DOUBLE_EQ(stretch_time(inst, F), 0.0);
}

TEST(IsValidPrefetchList, EmptyIsValid) {
  const Instance inst = testing::small_instance();
  EXPECT_TRUE(is_valid_prefetch_list(inst, PrefetchList{}));
}

TEST(IsValidPrefetchList, OnlyLastMayStretch) {
  const Instance inst = testing::small_instance();
  EXPECT_TRUE(is_valid_prefetch_list(inst, PrefetchList{0, 2}));   // 10 < 12
  EXPECT_FALSE(is_valid_prefetch_list(inst, PrefetchList{2, 0, 3}));
  // K = {2, 0} -> 15 >= 12: the last prefetch would start after the
  // request window.
}

TEST(IsValidPrefetchList, SingleHugeItemValid) {
  const Instance inst = testing::small_instance();
  EXPECT_TRUE(is_valid_prefetch_list(inst, PrefetchList{1}));  // r=20 alone
}

TEST(IsValidPrefetchList, RejectsDuplicates) {
  const Instance inst = testing::small_instance();
  EXPECT_FALSE(is_valid_prefetch_list(inst, PrefetchList{0, 0}));
}

TEST(IsValidPrefetchList, RejectsOutOfRangeIds) {
  const Instance inst = testing::small_instance();
  EXPECT_FALSE(is_valid_prefetch_list(inst, PrefetchList{9}));
  EXPECT_FALSE(is_valid_prefetch_list(inst, PrefetchList{-1}));
}

TEST(IsValidPrefetchList, ZeroViewingTimeForbidsAnyPrefetch) {
  Instance inst = testing::small_instance();
  inst.v = 0.0;
  EXPECT_FALSE(is_valid_prefetch_list(inst, PrefetchList{2}));
  EXPECT_TRUE(is_valid_prefetch_list(inst, PrefetchList{}));
}

TEST(ExpectedAccessTime, NoPrefetchHandChecked) {
  const Instance inst = testing::small_instance();
  EXPECT_DOUBLE_EQ(expected_access_time_no_prefetch(inst), 12.15);
}

TEST(ExpectedAccessTime, PrefetchHandChecked) {
  const Instance inst = testing::small_instance();
  const PrefetchList F{0, 2};  // st = 3, z = 2
  // P_z st + sum_{i notin F} P_i (r_i + st) = .45 + .3*23 + .05*11 = 7.9
  EXPECT_DOUBLE_EQ(expected_access_time_prefetch(inst, F), 7.9);
}

TEST(ExpectedAccessTime, EmptyPrefetchEqualsNoPrefetch) {
  const Instance inst = testing::small_instance();
  EXPECT_DOUBLE_EQ(expected_access_time_prefetch(inst, PrefetchList{}),
                   expected_access_time_no_prefetch(inst));
}

TEST(AccessImprovement, Eq3HandChecked) {
  const Instance inst = testing::small_instance();
  const PrefetchList F{0, 2};
  // (5 + .75) - (1 - .5) * 3 = 4.25
  EXPECT_DOUBLE_EQ(access_improvement(inst, F), 4.25);
}

TEST(AccessImprovement, MatchesExpectationDifference) {
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const Instance inst = testing::random_instance(rng);
    // Build a random valid prefetch list from the canonical order.
    const auto order = canonical_order(inst);
    PrefetchList F;
    double r_sum = 0;
    for (ItemId i : order) {
      if (rng.bernoulli(0.5)) continue;
      if (r_sum >= inst.v) break;  // next item would violate Eq. (1)
      F.push_back(i);
      r_sum += inst.r[Instance::idx(i)];
    }
    if (F.empty()) continue;
    ASSERT_TRUE(is_valid_prefetch_list(inst, F));
    const double lhs = access_improvement(inst, F);
    const double rhs = expected_access_time_no_prefetch(inst) -
                       expected_access_time_prefetch(inst, F);
    EXPECT_NEAR(lhs, rhs, 1e-9);
  }
}

TEST(AccessImprovement, EmptyListIsZero) {
  const Instance inst = testing::small_instance();
  EXPECT_DOUBLE_EQ(access_improvement(inst, PrefetchList{}), 0.0);
}

TEST(AccessImprovement, InvalidListThrows) {
  const Instance inst = testing::small_instance();
  EXPECT_THROW(access_improvement(inst, PrefetchList{2, 0, 3}),
               std::invalid_argument);
}

TEST(Theorem3, DeltaDecomposition) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    const Instance inst = testing::random_instance(rng);
    const auto order = canonical_order(inst);
    // K = longest canonical prefix fitting strictly inside v; z = next.
    PrefetchList K;
    double r_sum = 0, p_sum = 0;
    std::size_t zi = 0;
    for (; zi < order.size(); ++zi) {
      const double r = inst.r[Instance::idx(order[zi])];
      if (r_sum + r >= inst.v) break;
      K.push_back(order[zi]);
      r_sum += r;
      p_sum += inst.P[Instance::idx(order[zi])];
    }
    if (zi >= order.size()) continue;
    PrefetchList F = K;
    F.push_back(order[zi]);
    const double st = stretch_time(inst, F);
    const double delta = theorem3_delta(inst, order[zi], p_sum, st);
    EXPECT_NEAR(access_improvement(inst, F),
                access_improvement(inst, K) + delta, 1e-9);
  }
}

TEST(RealizedAccessTime, Figure2Cases) {
  const Instance inst = testing::small_instance();
  const PrefetchList F{0, 2};  // K = {0}, z = 2, st = 3
  EXPECT_DOUBLE_EQ(realized_access_time(inst, F, 0), 0.0);    // in K
  EXPECT_DOUBLE_EQ(realized_access_time(inst, F, 2), 3.0);    // z
  EXPECT_DOUBLE_EQ(realized_access_time(inst, F, 1), 23.0);   // miss
  EXPECT_DOUBLE_EQ(realized_access_time(inst, F, 3), 11.0);   // miss
}

TEST(RealizedAccessTime, NoPrefetchIsRetrievalTime) {
  const Instance inst = testing::small_instance();
  EXPECT_DOUBLE_EQ(realized_access_time(inst, PrefetchList{}, 1), 20.0);
}

TEST(RealizedAccessTime, ExpectationConsistency) {
  // E over the catalog of realized T equals the closed-form expectation.
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const Instance inst = testing::random_instance(rng);
    const auto order = canonical_order(inst);
    PrefetchList F;
    double r_sum = 0;
    for (ItemId i : order) {
      if (r_sum >= inst.v) break;
      F.push_back(i);
      r_sum += inst.r[Instance::idx(i)];
    }
    if (F.empty()) continue;
    double expectation = 0;
    for (std::size_t i = 0; i < inst.n(); ++i) {
      expectation +=
          inst.P[i] *
          realized_access_time(inst, F, static_cast<ItemId>(i));
    }
    EXPECT_NEAR(expectation, expected_access_time_prefetch(inst, F), 1e-9);
  }
}

TEST(RealizedAccessTime, OutOfRangeRequestThrows) {
  const Instance inst = testing::small_instance();
  EXPECT_THROW(realized_access_time(inst, PrefetchList{}, 99),
               std::invalid_argument);
}

// ---- Section 5 (cache) ----------------------------------------------------

TEST(CachedModel, NoPrefetchExpectationExcludesCache) {
  const Instance inst = testing::small_instance();
  const std::vector<ItemId> C{1};
  // 12.15 - 6 = 6.15
  EXPECT_DOUBLE_EQ(expected_access_time_no_prefetch_cached(inst, C), 6.15);
}

TEST(CachedModel, Eq9HandChecked) {
  const Instance inst = testing::small_instance();
  const std::vector<ItemId> C{1};
  const PrefetchList F{0};
  const std::vector<ItemId> D{1};
  // g*(F) = 5 (no stretch); anti-g = P_1 r_1 = 6 -> g = -1.
  EXPECT_DOUBLE_EQ(access_improvement_cached(inst, F, D, C), -1.0);
}

TEST(CachedModel, Eq9WithStretchCredit) {
  Instance inst = testing::small_instance();
  inst.v = 12.0;
  const std::vector<ItemId> C{1, 3};
  const PrefetchList F{0, 2};          // st = 3
  const std::vector<ItemId> D{3};      // keep 1 cached
  // g*(F) = 4.25; anti-g = P_3 r_3 - P_1 * st = .4 - .9 = -.5
  EXPECT_DOUBLE_EQ(access_improvement_cached(inst, F, D, C), 4.75);
}

TEST(CachedModel, PrefetchOverlapWithCacheThrows) {
  const Instance inst = testing::small_instance();
  const std::vector<ItemId> C{0};
  EXPECT_THROW(access_improvement_cached(inst, PrefetchList{0}, {}, C),
               std::invalid_argument);
}

TEST(CachedModel, VictimOutsideCacheThrows) {
  const Instance inst = testing::small_instance();
  const std::vector<ItemId> C{1};
  const std::vector<ItemId> D{2};
  EXPECT_THROW(access_improvement_cached(inst, PrefetchList{0}, D, C),
               std::invalid_argument);
}

TEST(CachedModel, RealizedCases) {
  const Instance inst = testing::small_instance();
  const std::vector<ItemId> C{1, 3};
  const PrefetchList F{0, 2};  // K = {0}, z = 2, st = 3
  const std::vector<ItemId> D{3};
  EXPECT_DOUBLE_EQ(realized_access_time_cached(inst, F, D, C, 0), 0.0);
  EXPECT_DOUBLE_EQ(realized_access_time_cached(inst, F, D, C, 1), 0.0);
  EXPECT_DOUBLE_EQ(realized_access_time_cached(inst, F, D, C, 2), 3.0);
  EXPECT_DOUBLE_EQ(realized_access_time_cached(inst, F, D, C, 3), 11.0);
}

TEST(CachedModel, RealizedNoPlanHitsCache) {
  const Instance inst = testing::small_instance();
  const std::vector<ItemId> C{2};
  EXPECT_DOUBLE_EQ(
      realized_access_time_cached(inst, PrefetchList{}, {}, C, 2), 0.0);
  EXPECT_DOUBLE_EQ(
      realized_access_time_cached(inst, PrefetchList{}, {}, C, 0), 10.0);
}

TEST(CachedModel, Eq9ConsistentWithExpectation) {
  // g(F, D) must equal E(T|no prefetch, C) - E(T|F ejects D) where the
  // latter is computed by summing realized times over the catalog.
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    const Instance inst = testing::random_instance(rng);
    // Random cache of 2 items; F from the remaining ones.
    std::vector<ItemId> ids(inst.n());
    std::iota(ids.begin(), ids.end(), 0);
    rng.shuffle(ids);
    const std::vector<ItemId> C{ids[0], ids[1]};
    PrefetchList F;
    double r_sum = 0;
    for (std::size_t k = 2; k < ids.size(); ++k) {
      if (r_sum >= inst.v) break;
      F.push_back(ids[k]);
      r_sum += inst.r[Instance::idx(ids[k])];
    }
    if (F.empty()) continue;
    const std::vector<ItemId> D{C[0]};
    double e_prefetch = 0;
    for (std::size_t i = 0; i < inst.n(); ++i) {
      e_prefetch += inst.P[i] * realized_access_time_cached(
                                    inst, F, D, C, static_cast<ItemId>(i));
    }
    const double g = access_improvement_cached(inst, F, D, C);
    const double e_none = expected_access_time_no_prefetch_cached(inst, C);
    EXPECT_NEAR(g, e_none - e_prefetch, 1e-9);
  }
}

}  // namespace
}  // namespace skp
