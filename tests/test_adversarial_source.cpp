// Tests for the adversarial two-clique request source
// (workload/adversarial_source.hpp): row structure, determinism, the
// clique ping-pong, and the plan-cache thrash it exists to produce.
#include "workload/adversarial_source.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "sim/runtime.hpp"
#include "util/rng.hpp"

namespace skp {
namespace {

AdversarialSourceConfig small() {
  AdversarialSourceConfig cfg;
  cfg.n_items = 24;
  cfg.hot_set = 8;
  cfg.escape_prob = 0.02;
  return cfg;
}

TEST(AdversarialSource, CliqueRowStructure) {
  Rng rng(7);
  const auto cfg = small();
  const MarkovSource src = make_adversarial_source(cfg, rng);
  const std::size_t h = cfg.hot_set;
  ASSERT_EQ(src.n_states(), cfg.n_items);

  // Hot states: uniform over the (h-1) OTHER members of the own clique,
  // escape mass spread uniformly over the rival clique, nothing else.
  const double stay = (1.0 - cfg.escape_prob) / static_cast<double>(h - 1);
  const double defect = cfg.escape_prob / static_cast<double>(h);
  for (std::size_t s = 0; s < 2 * h; ++s) {
    const bool in_a = s < h;
    const auto row = src.transition_row(s);
    double sum = 0.0;
    for (std::size_t j = 0; j < src.n_states(); ++j) {
      sum += row[j];
      if (j == s) {
        EXPECT_EQ(row[j], 0.0) << "self-loop at state " << s;
        continue;
      }
      const bool j_in_own = in_a ? j < h : (j >= h && j < 2 * h);
      const bool j_in_rival = in_a ? (j >= h && j < 2 * h) : j < h;
      if (j_in_own) {
        EXPECT_NEAR(row[j], stay, 1e-12) << s << " -> " << j;
      } else if (j_in_rival) {
        EXPECT_NEAR(row[j], defect, 1e-12) << s << " -> " << j;
      } else {
        EXPECT_EQ(row[j], 0.0) << s << " -> " << j;
      }
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "row " << s;
  }

  // Cold states drop the walk uniformly into clique A.
  for (std::size_t s = 2 * h; s < cfg.n_items; ++s) {
    const auto row = src.transition_row(s);
    double sum = 0.0;
    for (std::size_t j = 0; j < src.n_states(); ++j) {
      sum += row[j];
      if (j < h) {
        EXPECT_NEAR(row[j], 1.0 / static_cast<double>(h), 1e-12);
      } else {
        EXPECT_EQ(row[j], 0.0);
      }
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "cold row " << s;
  }
}

TEST(AdversarialSource, DeterministicInTheRngStream) {
  Rng a(42), b(42), c(43);
  const auto cfg = small();
  const MarkovSource sa = make_adversarial_source(cfg, a);
  const MarkovSource sb = make_adversarial_source(cfg, b);
  const MarkovSource sc = make_adversarial_source(cfg, c);
  bool any_diff = false;
  for (std::size_t s = 0; s < sa.n_states(); ++s) {
    EXPECT_EQ(sa.viewing_time(s), sb.viewing_time(s));
    EXPECT_EQ(sa.retrieval_time(static_cast<ItemId>(s)),
              sb.retrieval_time(static_cast<ItemId>(s)));
    if (sa.viewing_time(s) != sc.viewing_time(s) ||
        sa.retrieval_time(static_cast<ItemId>(s)) !=
            sc.retrieval_time(static_cast<ItemId>(s))) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff) << "catalogs must depend on the rng stream";
}

TEST(AdversarialSource, WalkPingPongsBetweenCliques) {
  Rng build(7);
  auto cfg = small();
  cfg.escape_prob = 0.25;  // frequent defections so a short walk flips
  MarkovSource src = make_adversarial_source(cfg, build);
  const std::size_t h = cfg.hot_set;

  // A cold entry state must drop straight into clique A.
  src.teleport(2 * h);
  Rng walk(11);
  std::size_t s = src.step(walk);
  EXPECT_LT(s, h);

  std::set<bool> cliques_seen;
  for (int i = 0; i < 400; ++i) {
    s = src.step(walk);
    ASSERT_LT(s, 2 * h) << "the walk never re-enters cold states";
    cliques_seen.insert(s < h);
  }
  EXPECT_EQ(cliques_seen.size(), 2u) << "walk stuck in one clique";
}

TEST(AdversarialSource, RejectsDegenerateConfigs) {
  Rng rng(1);
  auto cfg = small();
  cfg.hot_set = 1;  // no "other member" to move to
  EXPECT_THROW(make_adversarial_source(cfg, rng), std::invalid_argument);
  cfg = small();
  cfg.hot_set = 13;  // 2*13 > 24: cliques would overlap
  EXPECT_THROW(make_adversarial_source(cfg, rng), std::invalid_argument);
  cfg = small();
  cfg.escape_prob = 0.0;  // walk could never defect
  EXPECT_THROW(make_adversarial_source(cfg, rng), std::invalid_argument);
  cfg = small();
  cfg.escape_prob = 1.0;  // no within-clique mass left
  EXPECT_THROW(make_adversarial_source(cfg, rng), std::invalid_argument);
  cfg = small();
  cfg.v_lo = 10.0;
  cfg.v_hi = 5.0;
  EXPECT_THROW(make_adversarial_source(cfg, rng), std::invalid_argument);
}

SimSpec thrash_spec(SimWorkloadKind kind) {
  SimSpec spec;
  spec.driver = SimDriverKind::PrefetchCache;
  spec.workload.kind = kind;
  spec.workload.n_items = 24;
  spec.workload.adv_hot_set = 8;
  spec.workload.adv_escape = 0.02;
  spec.workload.out_degree_lo = 4;  // markov baseline shape
  spec.workload.out_degree_hi = 8;
  spec.predictor = PredictorKind::Oracle;
  spec.cache_size = 6;  // < hot_set: the clique never fits
  spec.requests = 2000;
  spec.seed = 2026;
  return spec;
}

TEST(AdversarialSource, ThrashesThePlanCacheRelativeToMarkov) {
  // The whole point of the workload: hot sets sized just past the cache
  // keep evicting what the caches learned, so the (state, cache-contents)
  // memo keys recur far less often than under a benign chain of the same
  // size. The gap is the thrash, pinned here so a cache-keying change
  // that accidentally collapses contexts gets caught.
  const SimResult adv = run_sim(thrash_spec(SimWorkloadKind::Adversarial));
  const SimResult benign = run_sim(thrash_spec(SimWorkloadKind::Markov));
  const double adv_rate = adv.plan_cache.selections.hit_rate();
  const double benign_rate = benign.plan_cache.selections.hit_rate();
  EXPECT_GT(adv.plan_cache.selections.lookups(), 0u);
  EXPECT_LT(adv_rate + 0.1, benign_rate)
      << "adversarial " << adv_rate << " vs markov " << benign_rate;
}

TEST(AdversarialSource, PlanCacheOnOffBitIdenticalUnderThrash) {
  // Memoization must stay a pure cache even while being thrashed.
  SimSpec on = thrash_spec(SimWorkloadKind::Adversarial);
  SimSpec off = on;
  off.use_plan_cache = false;
  const SimResult a = run_sim(on);
  const SimResult b = run_sim(off);
  EXPECT_EQ(a.metrics.hits, b.metrics.hits);
  EXPECT_EQ(a.metrics.demand_fetches, b.metrics.demand_fetches);
  EXPECT_EQ(a.metrics.prefetch_fetches, b.metrics.prefetch_fetches);
  EXPECT_EQ(a.metrics.wasted_prefetches, b.metrics.wasted_prefetches);
  EXPECT_DOUBLE_EQ(a.metrics.network_time, b.metrics.network_time);
  EXPECT_EQ(b.plan_cache.selections.lookups(), 0u);
}

}  // namespace
}  // namespace skp
