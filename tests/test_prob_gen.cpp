#include "workload/prob_gen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace skp {
namespace {

double sum(const std::vector<double>& p) {
  double s = 0;
  for (double x : p) s += x;
  return s;
}

TEST(FlatProbabilities, SumToOneAndPositive) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const auto p = flat_probabilities(10, rng);
    EXPECT_NEAR(sum(p), 1.0, 1e-12);
    for (double x : p) EXPECT_GT(x, 0.0);
  }
}

TEST(SkewyProbabilities, SumToOneAndPositive) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const auto p = skewy_probabilities(10, rng);
    EXPECT_NEAR(sum(p), 1.0, 1e-12);
    for (double x : p) EXPECT_GT(x, 0.0);
  }
}

TEST(SkewyProbabilities, MoreSkewedThanFlat) {
  // "The skewy method generates a situation where the next request is
  // highly predictable" — its entropy must sit well below flat's.
  Rng rng(3);
  double h_skewy = 0, h_flat = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    h_skewy += entropy(skewy_probabilities(10, rng));
    h_flat += entropy(flat_probabilities(10, rng));
  }
  EXPECT_LT(h_skewy / trials, 0.6 * (h_flat / trials));
}

TEST(SkewyProbabilities, DominantItemCarriesMostMass) {
  Rng rng(4);
  double avg_max = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    const auto p = skewy_probabilities(10, rng);
    avg_max += *std::max_element(p.begin(), p.end());
  }
  EXPECT_GT(avg_max / trials, 0.55);  // highly predictable on average
}

TEST(SkewyProbabilities, ExponentControlsSkew) {
  Rng rng(5);
  double h2 = 0, h16 = 0;
  for (int t = 0; t < 300; ++t) {
    h2 += entropy(skewy_probabilities(10, rng, 2.0));
    h16 += entropy(skewy_probabilities(10, rng, 16.0));
  }
  EXPECT_LT(h16, h2);
}

TEST(GenerateProbabilities, DispatchesOnMethod) {
  Rng rng(6);
  const auto skewy = generate_probabilities(8, ProbMethod::Skewy, rng);
  const auto flat = generate_probabilities(8, ProbMethod::Flat, rng);
  EXPECT_EQ(skewy.size(), 8u);
  EXPECT_EQ(flat.size(), 8u);
  EXPECT_NEAR(sum(skewy), 1.0, 1e-12);
  EXPECT_NEAR(sum(flat), 1.0, 1e-12);
}

TEST(ZipfProbabilities, UnshuffledIsMonotone) {
  Rng rng(7);
  const auto p = zipf_probabilities(10, 1.0, rng, /*shuffle=*/false);
  for (std::size_t i = 1; i < p.size(); ++i) {
    EXPECT_GE(p[i - 1], p[i]);
  }
  EXPECT_NEAR(sum(p), 1.0, 1e-12);
}

TEST(ZipfProbabilities, ZeroExponentIsUniform) {
  Rng rng(8);
  const auto p = zipf_probabilities(5, 0.0, rng, false);
  for (double x : p) EXPECT_NEAR(x, 0.2, 1e-12);
}

TEST(ZipfProbabilities, ShuffleKeepsMultiset) {
  Rng rng(9);
  auto a = zipf_probabilities(10, 1.2, rng, false);
  auto b = zipf_probabilities(10, 1.2, rng, true);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(DirichletProbabilities, SumToOne) {
  Rng rng(10);
  for (double alpha : {0.2, 1.0, 5.0}) {
    const auto p = dirichlet_probabilities(12, alpha, rng);
    EXPECT_NEAR(sum(p), 1.0, 1e-12);
  }
}

TEST(DirichletProbabilities, SmallAlphaIsSpikier) {
  Rng rng(11);
  double h_small = 0, h_large = 0;
  for (int t = 0; t < 300; ++t) {
    h_small += entropy(dirichlet_probabilities(10, 0.1, rng));
    h_large += entropy(dirichlet_probabilities(10, 10.0, rng));
  }
  EXPECT_LT(h_small, h_large);
}

TEST(DirichletProbabilities, AlphaOneMatchesFlatDistributionally) {
  // Dirichlet(1) and normalized-Exp(1) are the same law; compare mean
  // entropies as a cheap distributional check.
  Rng rng(12);
  double h_d = 0, h_f = 0;
  for (int t = 0; t < 2000; ++t) {
    h_d += entropy(dirichlet_probabilities(8, 1.0, rng));
    h_f += entropy(flat_probabilities(8, rng));
  }
  EXPECT_NEAR(h_d / 2000, h_f / 2000, 0.02);
}

TEST(Entropy, KnownValues) {
  EXPECT_DOUBLE_EQ(entropy({1.0, 0.0}), 0.0);
  EXPECT_NEAR(entropy({0.5, 0.5}), std::log(2.0), 1e-12);
  EXPECT_NEAR(entropy({0.25, 0.25, 0.25, 0.25}), std::log(4.0), 1e-12);
}

TEST(Generators, RejectDegenerateArguments) {
  Rng rng(13);
  EXPECT_THROW(flat_probabilities(0, rng), std::invalid_argument);
  EXPECT_THROW(skewy_probabilities(0, rng), std::invalid_argument);
  EXPECT_THROW(skewy_probabilities(5, rng, 0.0), std::invalid_argument);
  EXPECT_THROW(zipf_probabilities(0, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(zipf_probabilities(5, -1.0, rng), std::invalid_argument);
  EXPECT_THROW(dirichlet_probabilities(0, 1.0, rng),
               std::invalid_argument);
  EXPECT_THROW(dirichlet_probabilities(5, 0.0, rng),
               std::invalid_argument);
}

TEST(ProbMethodNames, Stable) {
  EXPECT_STREQ(to_string(ProbMethod::Skewy), "skewy");
  EXPECT_STREQ(to_string(ProbMethod::Flat), "flat");
}

}  // namespace
}  // namespace skp
