#include "workload/markov_source.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace skp {
namespace {

MarkovSourceConfig small_config() {
  MarkovSourceConfig cfg;
  cfg.n_states = 20;
  cfg.out_degree_lo = 3;
  cfg.out_degree_hi = 6;
  return cfg;
}

TEST(MarkovSource, PaperDefaultsMatchFig7Caption) {
  const MarkovSourceConfig cfg;
  EXPECT_EQ(cfg.n_states, 100u);
  EXPECT_EQ(cfg.out_degree_lo, 10u);
  EXPECT_EQ(cfg.out_degree_hi, 20u);
  EXPECT_DOUBLE_EQ(cfg.v_lo, 1.0);
  EXPECT_DOUBLE_EQ(cfg.v_hi, 100.0);
  EXPECT_DOUBLE_EQ(cfg.r_lo, 1.0);
  EXPECT_DOUBLE_EQ(cfg.r_hi, 30.0);
}

TEST(MarkovSource, RejectsDegenerateConfigs) {
  Rng rng(1);
  MarkovSourceConfig cfg;
  cfg.n_states = 1;
  EXPECT_THROW(MarkovSource(cfg, rng), std::invalid_argument);
  cfg = MarkovSourceConfig{};
  cfg.out_degree_lo = 0;
  EXPECT_THROW(MarkovSource(cfg, rng), std::invalid_argument);
  cfg = MarkovSourceConfig{};
  cfg.out_degree_lo = 5;
  cfg.out_degree_hi = 3;
  EXPECT_THROW(MarkovSource(cfg, rng), std::invalid_argument);
}

TEST(MarkovSource, TimesWithinConfiguredRanges) {
  Rng rng(2);
  const MarkovSource src(MarkovSourceConfig{}, rng);
  for (std::size_t s = 0; s < src.n_states(); ++s) {
    EXPECT_GE(src.viewing_time(s), 1.0);
    EXPECT_LE(src.viewing_time(s), 100.0);
    EXPECT_GE(src.retrieval_time(static_cast<ItemId>(s)), 1.0);
    EXPECT_LE(src.retrieval_time(static_cast<ItemId>(s)), 30.0);
  }
}

TEST(MarkovSource, IntegerTimesAreIntegral) {
  Rng rng(3);
  const MarkovSource src(MarkovSourceConfig{}, rng);
  for (std::size_t s = 0; s < src.n_states(); ++s) {
    const double v = src.viewing_time(s);
    EXPECT_DOUBLE_EQ(v, std::floor(v));
  }
}

TEST(MarkovSource, OutDegreesWithinBounds) {
  Rng rng(4);
  const MarkovSource src(MarkovSourceConfig{}, rng);
  for (std::size_t s = 0; s < src.n_states(); ++s) {
    const auto succ = src.successors(s);
    EXPECT_GE(succ.size(), 10u);
    EXPECT_LE(succ.size(), 20u);
  }
}

TEST(MarkovSource, RowsAreProbabilityDistributions) {
  Rng rng(5);
  const MarkovSource src(small_config(), rng);
  for (std::size_t s = 0; s < src.n_states(); ++s) {
    const auto row = src.transition_row(s);
    double sum = 0;
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(MarkovSource, NoSelfLoopsByDefault) {
  Rng rng(6);
  const MarkovSource src(small_config(), rng);
  for (std::size_t s = 0; s < src.n_states(); ++s) {
    EXPECT_DOUBLE_EQ(src.transition_row(s)[s], 0.0);
  }
}

TEST(MarkovSource, SelfLoopsWhenAllowed) {
  Rng rng(7);
  MarkovSourceConfig cfg = small_config();
  cfg.allow_self_loop = true;
  cfg.out_degree_lo = cfg.n_states;  // force full fan-out
  cfg.out_degree_hi = cfg.n_states;
  const MarkovSource src(cfg, rng);
  bool any_self = false;
  for (std::size_t s = 0; s < src.n_states(); ++s) {
    if (src.transition_row(s)[s] > 0.0) any_self = true;
  }
  EXPECT_TRUE(any_self);
}

TEST(MarkovSource, SuccessorsMatchDenseRow) {
  Rng rng(8);
  const MarkovSource src(small_config(), rng);
  for (std::size_t s = 0; s < src.n_states(); ++s) {
    const auto row = src.transition_row(s);
    std::set<ItemId> from_row;
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (row[j] > 0.0) from_row.insert(static_cast<ItemId>(j));
    }
    const auto succ = src.successors(s);
    const std::set<ItemId> from_succ(succ.begin(), succ.end());
    EXPECT_EQ(from_row, from_succ);
  }
}

TEST(MarkovSource, StepOnlyReachesSuccessors) {
  Rng rng(9);
  MarkovSource src(small_config(), rng);
  Rng walk(10);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t before = src.current_state();
    const std::size_t after = src.step(walk);
    const auto succ = src.successors(before);
    EXPECT_NE(std::find(succ.begin(), succ.end(),
                        static_cast<ItemId>(after)),
              succ.end());
    EXPECT_EQ(after, src.current_state());
  }
}

TEST(MarkovSource, StepFrequenciesTrackProbabilities) {
  Rng rng(11);
  MarkovSource src(small_config(), rng);
  src.teleport(0);
  const auto row = src.transition_row(0);
  std::vector<int> counts(src.n_states(), 0);
  Rng walk(12);
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    src.teleport(0);
    ++counts[src.step(walk)];
  }
  for (std::size_t j = 0; j < src.n_states(); ++j) {
    EXPECT_NEAR(static_cast<double>(counts[j]) / trials, row[j], 0.01);
  }
}

TEST(MarkovSource, TeleportValidation) {
  Rng rng(13);
  MarkovSource src(small_config(), rng);
  EXPECT_THROW(src.teleport(99), std::invalid_argument);
  src.teleport(5);
  EXPECT_EQ(src.current_state(), 5u);
}

TEST(MarkovSource, InstanceAtMatchesRowAndTimes) {
  Rng rng(14);
  const MarkovSource src(small_config(), rng);
  const Instance inst = src.instance_at(3);
  EXPECT_NO_THROW(inst.validate());
  EXPECT_EQ(inst.n(), src.n_states());
  EXPECT_DOUBLE_EQ(inst.v, src.viewing_time(3));
  const auto row = src.transition_row(3);
  for (std::size_t j = 0; j < inst.n(); ++j) {
    EXPECT_DOUBLE_EQ(inst.P[j], row[j]);
    EXPECT_DOUBLE_EQ(inst.r[j],
                     src.retrieval_time(static_cast<ItemId>(j)));
  }
}

TEST(MarkovSource, DeterministicInSeed) {
  Rng rng1(15), rng2(15);
  const MarkovSource a(small_config(), rng1);
  const MarkovSource b(small_config(), rng2);
  for (std::size_t s = 0; s < a.n_states(); ++s) {
    EXPECT_DOUBLE_EQ(a.viewing_time(s), b.viewing_time(s));
    const auto ra = a.transition_row(s);
    const auto rb = b.transition_row(s);
    for (std::size_t j = 0; j < ra.size(); ++j) {
      EXPECT_DOUBLE_EQ(ra[j], rb[j]);
    }
  }
}

}  // namespace
}  // namespace skp
