// Randomized differential tests: the cache substrates against trivially
// correct reference models, thousands of random operations each. The
// Zobrist content fingerprints ride along — every step checks them
// against a recompute-from-scratch model, and a fingerprint -> set map
// smoke-checks for collisions across all states the fuzz visits.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cache/cache.hpp"
#include "cache/sized_cache.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace skp {
namespace {

using testing::model_fingerprint;

// Asserts fp(cache) matches the model and records the state in the
// collision map (distinct sets must never share a fingerprint).
void check_fingerprint(std::uint64_t cache_fp, const std::set<ItemId>& model,
                       std::map<std::uint64_t, std::set<ItemId>>& seen) {
  ASSERT_EQ(cache_fp, model_fingerprint(model));
  const auto [it, inserted] = seen.emplace(cache_fp, model);
  if (!inserted) {
    ASSERT_EQ(it->second, model)
        << "distinct content sets collided on fingerprint " << cache_fp;
  }
}

TEST(CacheFuzz, SlotCacheMatchesSetModel) {
  Rng rng(111);
  const std::size_t catalog = 30;
  const std::size_t capacity = 7;
  SlotCache cache(catalog, capacity);
  std::set<ItemId> model;
  std::map<std::uint64_t, std::set<ItemId>> fp_seen;
  for (int op = 0; op < 20000; ++op) {
    const auto item = static_cast<ItemId>(rng.next_below(catalog));
    switch (rng.next_below(3)) {
      case 0:  // insert if possible
        if (!model.count(item) && model.size() < capacity) {
          cache.insert(item);
          model.insert(item);
        } else {
          EXPECT_THROW(cache.insert(item), std::invalid_argument);
        }
        break;
      case 1:  // erase if present
        if (model.count(item)) {
          cache.erase(item);
          model.erase(item);
        } else {
          EXPECT_THROW(cache.erase(item), std::invalid_argument);
        }
        break;
      case 2:  // query
        EXPECT_EQ(cache.contains(item), model.count(item) > 0);
        break;
    }
    ASSERT_EQ(cache.size(), model.size());
    ASSERT_EQ(cache.full(), model.size() == capacity);
    check_fingerprint(cache.fingerprint(), model, fp_seen);
  }
  // Final contents agree as sets.
  std::set<ItemId> final_contents(cache.contents().begin(),
                                  cache.contents().end());
  EXPECT_EQ(final_contents, model);
}

TEST(CacheFuzz, SlotCacheReplacePreservesInvariants) {
  Rng rng(113);
  const std::size_t catalog = 20;
  SlotCache cache(catalog, 5);
  std::set<ItemId> model;
  // Fill.
  while (model.size() < 5) {
    const auto i = static_cast<ItemId>(rng.next_below(catalog));
    if (!model.count(i)) {
      cache.insert(i);
      model.insert(i);
    }
  }
  for (int op = 0; op < 5000; ++op) {
    const auto incoming = static_cast<ItemId>(rng.next_below(catalog));
    if (model.count(incoming)) continue;
    // Random victim from the model.
    auto it = model.begin();
    std::advance(it, static_cast<long>(rng.next_below(model.size())));
    const ItemId victim = *it;
    cache.replace(victim, incoming);
    model.erase(victim);
    model.insert(incoming);
    ASSERT_EQ(cache.size(), 5u);
    ASSERT_TRUE(cache.contains(incoming));
    ASSERT_FALSE(cache.contains(victim));
    ASSERT_EQ(cache.fingerprint(), model_fingerprint(model));
  }
}

TEST(CacheFuzz, SizedCacheMatchesAccountingModel) {
  Rng rng(117);
  const std::size_t catalog = 25;
  std::vector<double> sizes(catalog);
  for (auto& s : sizes) s = rng.uniform(1.0, 10.0);
  const double capacity = 40.0;
  SizedCache cache(sizes, capacity);
  std::set<ItemId> model;
  std::map<std::uint64_t, std::set<ItemId>> fp_seen;
  double used = 0.0;
  for (int op = 0; op < 20000; ++op) {
    const auto item = static_cast<ItemId>(rng.next_below(catalog));
    const double sz = sizes[static_cast<std::size_t>(item)];
    if (rng.bernoulli(0.5)) {
      const bool can =
          !model.count(item) && used + sz <= capacity + 1e-12;
      if (can) {
        cache.insert(item);
        model.insert(item);
        used += sz;
      } else {
        EXPECT_THROW(cache.insert(item), std::invalid_argument);
      }
    } else {
      if (model.count(item)) {
        cache.erase(item);
        model.erase(item);
        used -= sz;
      } else {
        EXPECT_THROW(cache.erase(item), std::invalid_argument);
      }
    }
    ASSERT_NEAR(cache.used(), used, 1e-6);
    ASSERT_EQ(cache.count(), model.size());
    check_fingerprint(cache.fingerprint(), model, fp_seen);
  }
}

TEST(CacheFuzz, SizedCacheFitsConsistentWithInsert) {
  Rng rng(119);
  std::vector<double> sizes(15);
  for (auto& s : sizes) s = rng.uniform(0.5, 6.0);
  SizedCache cache(sizes, 12.0);
  for (int op = 0; op < 10000; ++op) {
    const auto item = static_cast<ItemId>(rng.next_below(15));
    if (cache.contains(item)) {
      cache.erase(item);
      continue;
    }
    if (cache.fits(item) && cache.cacheable(item)) {
      EXPECT_NO_THROW(cache.insert(item));
    } else {
      EXPECT_THROW(cache.insert(item), std::invalid_argument);
    }
  }
}

}  // namespace
}  // namespace skp
