#include "core/prefetch_engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/access_model.hpp"
#include "test_util.hpp"

namespace skp {
namespace {

EngineConfig cfg_for(PrefetchPolicy p) {
  EngineConfig cfg;
  cfg.policy = p;
  return cfg;
}

TEST(EnginePlan, NonePolicyPlansNothing) {
  const PrefetchEngine engine(cfg_for(PrefetchPolicy::None));
  const auto plan = engine.plan(testing::small_instance());
  EXPECT_TRUE(plan.fetch.empty());
  EXPECT_TRUE(plan.evict.empty());
  EXPECT_DOUBLE_EQ(plan.predicted_g, 0.0);
}

TEST(EnginePlan, SkpPolicyMatchesSolver) {
  const PrefetchEngine engine(cfg_for(PrefetchPolicy::SKP));
  const Instance inst = testing::small_instance();
  const auto plan = engine.plan(inst);
  const auto sol = solve_skp(inst);
  EXPECT_EQ(plan.fetch, sol.F);
  EXPECT_DOUBLE_EQ(plan.predicted_g, sol.g);
}

TEST(EnginePlan, KpPolicyNeverStretches) {
  Rng rng(401);
  const PrefetchEngine engine(cfg_for(PrefetchPolicy::KP));
  for (int trial = 0; trial < 100; ++trial) {
    const Instance inst = testing::random_instance(rng);
    const auto plan = engine.plan(inst);
    EXPECT_DOUBLE_EQ(plan.stretch, 0.0);
    EXPECT_DOUBLE_EQ(stretch_time(inst, plan.fetch), 0.0);
  }
}

TEST(EnginePlan, PerfectFetchesExactlyTheOracleItem) {
  const PrefetchEngine engine(cfg_for(PrefetchPolicy::Perfect));
  const Instance inst = testing::small_instance();
  const auto plan = engine.plan(inst, ItemId{1});
  EXPECT_EQ(plan.fetch, (PrefetchList{1}));
}

TEST(EnginePlan, PerfectWithoutOracleIsEmpty) {
  const PrefetchEngine engine(cfg_for(PrefetchPolicy::Perfect));
  const auto plan = engine.plan(testing::small_instance());
  EXPECT_TRUE(plan.fetch.empty());
}

TEST(EnginePlan, ThresholdSuppressesLowValueItems) {
  EngineConfig cfg = cfg_for(PrefetchPolicy::SKP);
  cfg.min_profit_threshold = 1.0;  // drops items 2 (.75) and 3 (.4)
  const PrefetchEngine engine(cfg);
  Instance inst = testing::small_instance();
  inst.v = 1000.0;  // room for everything
  const auto plan = engine.plan(inst);
  for (ItemId f : plan.fetch) {
    EXPECT_GE(inst.profit(f), 1.0);
  }
  EXPECT_EQ(plan.fetch.size(), 2u);
}

TEST(EnginePlanCache, CachedItemsAreNotCandidates) {
  const PrefetchEngine engine(cfg_for(PrefetchPolicy::SKP));
  const Instance inst = testing::small_instance();
  SlotCache cache(inst.n(), 2);
  cache.insert(0);
  FreqTracker freq(inst.n());
  const auto plan = engine.plan_with_cache(inst, cache, &freq);
  for (ItemId f : plan.fetch) {
    EXPECT_NE(f, 0);
  }
}

TEST(EnginePlanCache, FreeSlotsFillWithoutEvictions) {
  const PrefetchEngine engine(cfg_for(PrefetchPolicy::SKP));
  const Instance inst = testing::small_instance();
  SlotCache cache(inst.n(), 4);  // plenty of space, nothing cached
  FreqTracker freq(inst.n());
  const auto plan = engine.plan_with_cache(inst, cache, &freq);
  EXPECT_FALSE(plan.fetch.empty());
  EXPECT_TRUE(plan.evict.empty());
}

TEST(EnginePlanCache, FullCacheRequiresAdmission) {
  // Cache holds the two most profitable items; remaining candidates have
  // lower profit, so Pr-arbitration blocks every prefetch.
  const Instance inst = testing::small_instance();
  SlotCache cache(inst.n(), 2);
  cache.insert(0);  // profit 5
  cache.insert(1);  // profit 6
  FreqTracker freq(inst.n());
  const PrefetchEngine engine(cfg_for(PrefetchPolicy::SKP));
  const auto plan = engine.plan_with_cache(inst, cache, &freq);
  EXPECT_TRUE(plan.fetch.empty());
}

TEST(EnginePlanCache, ProfitableCandidateDisplacesCheapVictim) {
  // Cache holds the two cheapest items; item 0 (profit 5) must displace
  // the minimal-Pr victim (item 3, profit .4).
  Instance inst = testing::small_instance();
  inst.v = 11.0;  // item 0 fits without stretch
  SlotCache cache(inst.n(), 2);
  cache.insert(2);
  cache.insert(3);
  FreqTracker freq(inst.n());
  const PrefetchEngine engine(cfg_for(PrefetchPolicy::SKP));
  const auto plan = engine.plan_with_cache(inst, cache, &freq);
  ASSERT_FALSE(plan.fetch.empty());
  EXPECT_EQ(plan.fetch.front(), 0);
  ASSERT_EQ(plan.evict.size(), plan.fetch.size());
  EXPECT_EQ(plan.evict.front(), 3);
}

TEST(EnginePlanCache, EvictAlignedWithFetchWhenFull) {
  Rng rng(403);
  const PrefetchEngine engine(cfg_for(PrefetchPolicy::SKP));
  for (int trial = 0; trial < 100; ++trial) {
    testing::RandomInstanceOptions opt;
    opt.n = 10;
    const Instance inst = testing::random_instance(rng, opt);
    SlotCache cache(inst.n(), 3);
    // Fill the cache with three random items.
    std::vector<ItemId> ids(inst.n());
    std::iota(ids.begin(), ids.end(), 0);
    rng.shuffle(ids);
    for (int k = 0; k < 3; ++k) cache.insert(ids[k]);
    FreqTracker freq(inst.n());
    const auto plan = engine.plan_with_cache(inst, cache, &freq);
    EXPECT_EQ(plan.fetch.size(), plan.evict.size());
    // Victims must come from the cache, fetches from outside it.
    for (ItemId d : plan.evict) EXPECT_TRUE(cache.contains(d));
    for (ItemId f : plan.fetch) EXPECT_FALSE(cache.contains(f));
    // The plan must be a valid Eq.-(1) construction.
    EXPECT_TRUE(is_valid_prefetch_list(inst, plan.fetch));
  }
}

TEST(EnginePlanCache, PredictedGMatchesEq9) {
  Rng rng(405);
  const PrefetchEngine engine(cfg_for(PrefetchPolicy::SKP));
  for (int trial = 0; trial < 100; ++trial) {
    testing::RandomInstanceOptions opt;
    opt.n = 10;
    const Instance inst = testing::random_instance(rng, opt);
    SlotCache cache(inst.n(), 3);
    std::vector<ItemId> ids(inst.n());
    std::iota(ids.begin(), ids.end(), 0);
    rng.shuffle(ids);
    for (int k = 0; k < 3; ++k) cache.insert(ids[k]);
    FreqTracker freq(inst.n());
    const auto plan = engine.plan_with_cache(inst, cache, &freq);
    if (plan.fetch.empty()) continue;
    EXPECT_NEAR(plan.predicted_g,
                access_improvement_cached(inst, plan.fetch, plan.evict,
                                          cache.contents()),
                1e-9);
  }
}

TEST(EnginePlanCache, PerfectBypassesAdmission) {
  // Oracle item has lower profit than every cached item but is prefetched
  // anyway (it *will* be requested).
  const Instance inst = testing::small_instance();
  SlotCache cache(inst.n(), 2);
  cache.insert(0);
  cache.insert(1);
  FreqTracker freq(inst.n());
  const PrefetchEngine engine(cfg_for(PrefetchPolicy::Perfect));
  const auto plan = engine.plan_with_cache(inst, cache, &freq, ItemId{3});
  ASSERT_EQ(plan.fetch.size(), 1u);
  EXPECT_EQ(plan.fetch.front(), 3);
  ASSERT_EQ(plan.evict.size(), 1u);
}

TEST(EnginePlanCache, PerfectSkipsCachedOracle) {
  const Instance inst = testing::small_instance();
  SlotCache cache(inst.n(), 2);
  cache.insert(1);
  FreqTracker freq(inst.n());
  const PrefetchEngine engine(cfg_for(PrefetchPolicy::Perfect));
  const auto plan = engine.plan_with_cache(inst, cache, &freq, ItemId{1});
  EXPECT_TRUE(plan.fetch.empty());
}

TEST(EnginePlanCache, StrictTiesBlockEqualProfitSwap) {
  Instance inst;
  inst.P = {0.5, 0.5};
  inst.r = {4.0, 4.0};  // equal profit 2.0
  inst.v = 10.0;
  SlotCache cache(inst.n(), 1);
  cache.insert(0);
  FreqTracker freq(inst.n());
  EngineConfig strict = cfg_for(PrefetchPolicy::SKP);
  strict.arbitration.strict_ties = true;
  EXPECT_TRUE(PrefetchEngine(strict)
                  .plan_with_cache(inst, cache, &freq)
                  .fetch.empty());
  EngineConfig listing = cfg_for(PrefetchPolicy::SKP);
  const auto plan =
      PrefetchEngine(listing).plan_with_cache(inst, cache, &freq);
  ASSERT_EQ(plan.fetch.size(), 1u);  // listing rule admits the tie
  EXPECT_EQ(plan.fetch.front(), 1);
}

TEST(PolicyNames, ToStringCoverage) {
  EXPECT_EQ(to_string(PrefetchPolicy::None), "none");
  EXPECT_EQ(to_string(PrefetchPolicy::KP), "KP");
  EXPECT_EQ(to_string(PrefetchPolicy::SKP), "SKP");
  EXPECT_EQ(to_string(PrefetchPolicy::Perfect), "perfect");
  EXPECT_EQ(to_string(SubArbitration::None), "none");
  EXPECT_EQ(to_string(SubArbitration::LFU), "LFU");
  EXPECT_EQ(to_string(SubArbitration::DS), "DS");
}

}  // namespace
}  // namespace skp
