// Tests for the unified simulation runtime (sim/runtime.hpp): registry
// dispatch, SimSpec equivalence with the legacy driver entry points, the
// netsim DES driver, and the simctl sharding/merge substrate.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/prefetch_cache.hpp"
#include "sim/prefetch_only.hpp"
#include "sim/runtime.hpp"
#include "sim/trace_replay.hpp"

namespace skp {
namespace {

// ---- Registry -----------------------------------------------------------

TEST(SimRegistry, AllDriversRegisteredWithStableNames) {
  const auto registry = driver_registry();
  ASSERT_EQ(registry.size(), 7u);
  const char* expected[] = {"prefetch_only", "prefetch_cache",
                            "trace_replay",  "netsim_des",
                            "scenario",      "multi_client",
                            "skpd_loopback"};
  for (std::size_t i = 0; i < registry.size(); ++i) {
    EXPECT_STREQ(registry[i].name, expected[i]);
    EXPECT_EQ(find_driver(registry[i].kind).name, registry[i].name);
    EXPECT_EQ(find_driver(registry[i].name), &registry[i]);
    EXPECT_EQ(parse_driver_kind(registry[i].name), registry[i].kind);
  }
  EXPECT_EQ(find_driver("no_such_driver"), nullptr);
}

TEST(SimRegistry, EnumTokensRoundTrip) {
  for (const auto kind :
       {SimWorkloadKind::Markov, SimWorkloadKind::Iid, SimWorkloadKind::Zipf,
        SimWorkloadKind::MarkovDrift, SimWorkloadKind::TraceText}) {
    EXPECT_EQ(parse_workload_kind(to_string(kind)), kind);
  }
  for (const auto kind : {ReplacementKind::LRU, ReplacementKind::FIFO,
                          ReplacementKind::LFU, ReplacementKind::Random}) {
    EXPECT_EQ(parse_replacement_kind(to_string(kind)), kind);
  }
  for (const auto policy : {PrefetchPolicy::None, PrefetchPolicy::KP,
                            PrefetchPolicy::SKP, PrefetchPolicy::Perfect}) {
    EXPECT_EQ(parse_policy(policy_token(policy)), policy);
  }
  for (const auto sub :
       {SubArbitration::None, SubArbitration::LFU, SubArbitration::DS}) {
    EXPECT_EQ(parse_sub_arbitration(sub_token(sub)), sub);
  }
  for (const auto rule : {DeltaRule::ExactComplement, DeltaRule::PaperTail}) {
    EXPECT_EQ(parse_delta_rule(delta_token(rule)), rule);
  }
  EXPECT_EQ(parse_workload_kind("bogus"), std::nullopt);
  EXPECT_EQ(parse_policy("bogus"), std::nullopt);
}

// ---- Spec equivalence with the legacy entry points ----------------------

TEST(SimSpecEquivalence, PrefetchCacheMatchesLegacyRun) {
  SimSpec spec;  // prefetch_cache driver, paper-default Markov source
  spec.cache_size = 20;
  spec.sub = SubArbitration::DS;
  spec.requests = 2'000;
  spec.seed = 5;
  const SimResult via_registry = run_sim(spec);

  PrefetchCacheConfig cfg;
  cfg.cache_size = 20;
  cfg.sub = SubArbitration::DS;
  cfg.requests = 2'000;
  cfg.seed = 5;
  const PrefetchCacheResult direct = run_prefetch_cache(cfg);

  EXPECT_EQ(via_registry.metrics.hits, direct.metrics.hits);
  EXPECT_EQ(via_registry.metrics.demand_fetches,
            direct.metrics.demand_fetches);
  EXPECT_EQ(via_registry.metrics.prefetch_fetches,
            direct.metrics.prefetch_fetches);
  EXPECT_EQ(via_registry.metrics.network_time, direct.metrics.network_time);
  EXPECT_EQ(via_registry.metrics.solver_nodes, direct.metrics.solver_nodes);
  EXPECT_EQ(via_registry.metrics.mean_access_time(),
            direct.metrics.mean_access_time());
  EXPECT_EQ(via_registry.over_viewing_time, direct.over_viewing_time);
}

TEST(SimSpecEquivalence, SizedPrefetchCacheMatchesLegacyRun) {
  SimSpec spec;
  spec.sized_capacity = 155.0;
  spec.size_per_r = 1.0;
  spec.sub = SubArbitration::DS;
  spec.requests = 1'500;
  spec.seed = 3;
  const SimResult via_registry = run_sim(spec);

  SizedExperimentConfig cfg;
  cfg.capacity = 155.0;
  cfg.size_per_r = 1.0;
  cfg.sub = SubArbitration::DS;
  cfg.requests = 1'500;
  cfg.seed = 3;
  const PrefetchCacheResult direct = run_prefetch_cache_sized(cfg);

  EXPECT_EQ(via_registry.metrics.hits, direct.metrics.hits);
  EXPECT_EQ(via_registry.metrics.network_time, direct.metrics.network_time);
  EXPECT_EQ(via_registry.metrics.solver_nodes, direct.metrics.solver_nodes);
}

TEST(SimSpecEquivalence, PrefetchOnlyMatchesLegacyRun) {
  SimSpec spec;
  spec.driver = SimDriverKind::PrefetchOnly;
  spec.workload.kind = SimWorkloadKind::Iid;
  spec.workload.n_items = 10;
  spec.requests = 3'000;
  spec.seed = 9;
  const SimResult via_registry = run_sim(spec);

  PrefetchOnlyConfig cfg;
  cfg.n_items = 10;
  cfg.iterations = 3'000;
  cfg.seed = 9;
  const PrefetchOnlyResult direct = run_prefetch_only(cfg);

  EXPECT_EQ(via_registry.metrics.hits, direct.metrics.hits);
  EXPECT_EQ(via_registry.metrics.network_time, direct.metrics.network_time);
  EXPECT_EQ(via_registry.metrics.mean_access_time(),
            direct.metrics.mean_access_time());
  ASSERT_TRUE(via_registry.avg_T_by_v.has_value());
  const auto curve = via_registry.avg_T_by_v->series();
  const auto direct_curve = direct.avg_T_by_v.series();
  ASSERT_EQ(curve.size(), direct_curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(curve[i], direct_curve[i]);
  }
}

// ---- Driver-specific contracts ------------------------------------------

TEST(SimRuntime, TraceReplayIsDeterministicAndRejectsOracle) {
  SimSpec spec;
  spec.driver = SimDriverKind::TraceReplay;
  spec.predictor = PredictorKind::Markov1;
  spec.requests = 1'200;
  spec.seed = 4;
  const SimResult a = run_sim(spec);
  const SimResult b = run_sim(spec);
  EXPECT_EQ(a.metrics.hits, b.metrics.hits);
  EXPECT_EQ(a.metrics.network_time, b.metrics.network_time);
  EXPECT_GT(a.metrics.hits, 0u);

  spec.predictor = PredictorKind::Oracle;
  EXPECT_THROW(run_sim(spec), std::invalid_argument);
}

TEST(SimRuntime, NetsimDesOracleDeterministicAndMemoSafe) {
  SimSpec spec;
  spec.driver = SimDriverKind::NetsimDes;
  spec.cache_size = 20;
  spec.requests = 1'500;
  spec.seed = 8;
  const SimResult a = run_sim(spec);
  const SimResult b = run_sim(spec);
  EXPECT_EQ(a.metrics.hits, b.metrics.hits);
  EXPECT_EQ(a.metrics.network_time, b.metrics.network_time);
  EXPECT_EQ(a.metrics.mean_access_time(), b.metrics.mean_access_time());
  EXPECT_GT(a.plans, 0u);
  EXPECT_GT(a.link_utilization, 0.0);
  EXPECT_LE(a.link_utilization, 1.0);

  // Plan memoization must not change DES outcomes (the context key only
  // ever stands in for identical planning inputs).
  spec.use_plan_cache = false;
  const SimResult off = run_sim(spec);
  EXPECT_EQ(a.metrics.hits, off.metrics.hits);
  EXPECT_EQ(a.metrics.network_time, off.metrics.network_time);
  EXPECT_EQ(a.metrics.solver_nodes, off.metrics.solver_nodes);
  EXPECT_EQ(a.metrics.mean_access_time(), off.metrics.mean_access_time());
  EXPECT_GT(a.plan_cache.plans.lookups(), 0u);
  EXPECT_EQ(off.plan_cache.plans.lookups(), 0u);
}

TEST(SimRuntime, NetsimDesDriftingOracleOnOffBitIdentical) {
  // The drift changepoint invalidates the session's context-keyed plans;
  // a stale replay would break the on/off equality below.
  SimSpec spec;
  spec.driver = SimDriverKind::NetsimDes;
  spec.workload.kind = SimWorkloadKind::MarkovDrift;
  spec.workload.drift_period = 300;
  spec.cache_size = 15;
  spec.requests = 1'500;
  spec.seed = 6;
  const SimResult on = run_sim(spec);
  spec.use_plan_cache = false;
  const SimResult off = run_sim(spec);
  EXPECT_EQ(on.metrics.hits, off.metrics.hits);
  EXPECT_EQ(on.metrics.network_time, off.metrics.network_time);
  EXPECT_EQ(on.metrics.solver_nodes, off.metrics.solver_nodes);
  EXPECT_EQ(on.metrics.mean_access_time(), off.metrics.mean_access_time());
}

TEST(SimRuntime, MaterializedWorkloadsAreDeterministic) {
  for (const auto kind :
       {SimWorkloadKind::Markov, SimWorkloadKind::Iid, SimWorkloadKind::Zipf,
        SimWorkloadKind::MarkovDrift, SimWorkloadKind::TraceText}) {
    SimWorkload w;
    w.kind = kind;
    w.n_items = 24;
    w.out_degree_lo = 2;
    w.out_degree_hi = 6;
    w.v_lo = 5.0;
    w.v_hi = 40.0;
    w.drift_period = 100;
    Rng b1(17), w1(18), b2(17), w2(18);
    const MaterializedWorkload m1 = materialize_workload(w, 400, b1, w1);
    const MaterializedWorkload m2 = materialize_workload(w, 400, b2, w2);
    ASSERT_EQ(m1.cycles.size(), 400u);
    ASSERT_EQ(m1.n_items, 24u);
    ASSERT_EQ(m1.retrieval_times.size(), 24u);
    ASSERT_EQ(m2.cycles.size(), m1.cycles.size());
    for (std::size_t i = 0; i < m1.cycles.size(); ++i) {
      EXPECT_EQ(m1.cycles[i].item, m2.cycles[i].item);
      EXPECT_EQ(m1.cycles[i].viewing_time, m2.cycles[i].viewing_time);
      EXPECT_GE(m1.cycles[i].item, 0);
      EXPECT_LT(static_cast<std::size_t>(m1.cycles[i].item), 24u);
    }
    for (std::size_t i = 0; i < m1.retrieval_times.size(); ++i) {
      EXPECT_EQ(m1.retrieval_times[i], m2.retrieval_times[i]);
      EXPECT_GT(m1.retrieval_times[i], 0.0);
    }
  }
}

// ---- multi_client driver ------------------------------------------------

SimSpec quick_multi_client_spec() {
  SimSpec spec;
  spec.driver = SimDriverKind::MultiClientDes;
  spec.workload.n_items = 25;
  spec.workload.out_degree_lo = 4;
  spec.workload.out_degree_hi = 7;
  spec.multi_client.clients = 3;
  spec.cache_size = 6;
  spec.requests = 400;  // per client
  spec.seed = 13;
  return spec;
}

TEST(SimRuntime, MultiClientDeterministicInSeedWithPerClientRows) {
  const SimSpec spec = quick_multi_client_spec();
  const SimResult a = run_sim(spec);
  const SimResult b = run_sim(spec);
  EXPECT_EQ(a.metrics.hits, b.metrics.hits);
  EXPECT_EQ(a.metrics.network_time, b.metrics.network_time);
  EXPECT_EQ(a.metrics.mean_access_time(), b.metrics.mean_access_time());
  EXPECT_EQ(a.link_utilization, b.link_utilization);
  EXPECT_GT(a.plans, 0u);
  EXPECT_GT(a.link_utilization, 0.0);
  EXPECT_LE(a.link_utilization, 1.0 + 1e-9);

  // Per-client rows merge to the aggregate and serve the per-client
  // quota each.
  ASSERT_EQ(a.per_client.size(), 3u);
  std::uint64_t hits = 0, requests = 0;
  for (const SimMetrics& m : a.per_client) {
    EXPECT_EQ(m.requests, 400u);
    hits += m.hits;
    requests += m.requests;
  }
  EXPECT_EQ(hits, a.metrics.hits);
  EXPECT_EQ(requests, a.metrics.requests);

  // Homogeneous clients must still walk distinct trajectories (distinct
  // per-client streams): identical per-client counters across all three
  // would mean the chains collapsed onto one stream.
  EXPECT_FALSE(a.per_client[0].network_time ==
                   a.per_client[1].network_time &&
               a.per_client[1].network_time ==
                   a.per_client[2].network_time);

  SimSpec reseeded = spec;
  reseeded.seed = 99;
  EXPECT_NE(run_sim(reseeded).metrics.network_time,
            a.metrics.network_time);
}

TEST(SimRuntime, MultiClientPlanCacheOnOffBitIdentical) {
  SimSpec spec = quick_multi_client_spec();
  spec.requests = 800;
  const SimResult on = run_sim(spec);
  spec.use_plan_cache = false;
  const SimResult off = run_sim(spec);
  EXPECT_EQ(on.metrics.hits, off.metrics.hits);
  EXPECT_EQ(on.metrics.demand_fetches, off.metrics.demand_fetches);
  EXPECT_EQ(on.metrics.prefetch_fetches, off.metrics.prefetch_fetches);
  EXPECT_EQ(on.metrics.solver_nodes, off.metrics.solver_nodes);
  EXPECT_EQ(on.metrics.mean_access_time(), off.metrics.mean_access_time());
  EXPECT_EQ(on.metrics.network_time, off.metrics.network_time);
  EXPECT_EQ(on.link_utilization, off.link_utilization);
  // Oracle chains: recurring states replay stored selections (and some
  // full plans); disabled runs must not even look.
  EXPECT_GT(on.plan_cache.plans.hits, 0u);
  EXPECT_GT(on.plan_cache.selections.hits, 0u);
  EXPECT_EQ(off.plan_cache.plans.lookups(), 0u);
  EXPECT_EQ(off.plan_cache.selections.lookups(), 0u);
}

TEST(SimRuntime, MultiClientLearnedModeRunsEveryScenarioWorkload) {
  for (const auto kind :
       {SimWorkloadKind::Markov, SimWorkloadKind::Iid,
        SimWorkloadKind::TraceText}) {
    SimSpec spec = quick_multi_client_spec();
    spec.workload.kind = kind;
    spec.predictor = PredictorKind::Markov1;
    spec.predictor_min_prob = 0.02;
    spec.predictor_warmup = 32;
    const SimResult a = run_sim(spec);
    const SimResult b = run_sim(spec);
    EXPECT_EQ(a.metrics.network_time, b.metrics.network_time)
        << to_string(kind);
    EXPECT_EQ(a.metrics.requests, 1200u);
    EXPECT_GT(a.metrics.prefetch_fetches, 0u) << to_string(kind);
    // Learned clients bypass memoization (their rows churn every
    // observation — no context key holds).
    EXPECT_EQ(a.plan_cache.plans.lookups(), 0u);
  }
}

TEST(SimRuntime, MultiClientPerClientOverridesAreLocal) {
  // Overriding client 2's seed must not move clients 0/1 (private
  // per-client streams), and a per-client predictor override mixes
  // learned and oracle clients in one run.
  SimSpec spec = quick_multi_client_spec();
  const SimResult base = run_sim(spec);

  spec.multi_client.overrides.resize(3);
  spec.multi_client.overrides[2].seed = 777;
  const SimResult reseeded = run_sim(spec);
  ASSERT_EQ(reseeded.per_client.size(), 3u);
  EXPECT_EQ(base.per_client[0].solver_nodes,
            reseeded.per_client[0].solver_nodes);
  EXPECT_EQ(base.per_client[1].solver_nodes,
            reseeded.per_client[1].solver_nodes);
  EXPECT_NE(base.per_client[2].network_time,
            reseeded.per_client[2].network_time);

  spec.multi_client.overrides[2].predictor = PredictorKind::Markov1;
  spec.predictor_min_prob = 0.02;
  spec.predictor_warmup = 32;
  const SimResult mixed = run_sim(spec);
  EXPECT_EQ(mixed.metrics.requests, 1200u);
  // The oracle clients still memoize; the learned one does not add
  // lookups of its own.
  EXPECT_GT(mixed.plan_cache.selections.lookups(), 0u);

  // Wrong-sized override vectors are rejected.
  spec.multi_client.overrides.resize(2);
  EXPECT_THROW(run_sim(spec), std::invalid_argument);
}

TEST(SimRuntime, MultiClientSectionRejectedBySingleClientDrivers) {
  SimSpec spec;  // prefetch_cache
  spec.multi_client.clients = 2;
  EXPECT_THROW(run_sim(spec), std::invalid_argument);

  SimSpec des;
  des.driver = SimDriverKind::NetsimDes;
  des.multi_client.link_speedup = 2.0;
  EXPECT_THROW(run_sim(des), std::invalid_argument);

  // Oracle multi_client needs a chain-shaped workload.
  SimSpec iid = quick_multi_client_spec();
  iid.workload.kind = SimWorkloadKind::Iid;
  EXPECT_THROW(run_sim(iid), std::invalid_argument);
}

// ---- Hostile worlds through the registry --------------------------------

TEST(SimRuntime, MultiClientRequestOverridesSplitWithoutRemainderLoss) {
  // A total budget that does not divide by the client count lands as
  // base+1 quotas on the first clients via per-client overrides; the
  // aggregate must serve every requested cycle.
  SimSpec spec = quick_multi_client_spec();
  spec.requests = 400;
  spec.multi_client.overrides.resize(3);
  spec.multi_client.overrides[0].requests = 401;
  const SimResult res = run_sim(spec);
  ASSERT_EQ(res.per_client.size(), 3u);
  EXPECT_EQ(res.per_client[0].requests, 401u);
  EXPECT_EQ(res.per_client[1].requests, 400u);
  EXPECT_EQ(res.per_client[2].requests, 400u);
  EXPECT_EQ(res.metrics.requests, 1201u);

  // A zero quota is rejected, not served as an idle ghost client.
  spec.multi_client.overrides[0].requests = 0;
  EXPECT_THROW(run_sim(spec), std::invalid_argument);
}

TEST(SimRuntime, MultiClientHostileSpecsRunDeterministically) {
  // Flash crowd, churn, and a time-varying link each produce a
  // reproducible trajectory through the registry, and churn surfaces in
  // the result surface.
  SimSpec flash = quick_multi_client_spec();
  flash.multi_client.phase_align = 0.8;
  const SimResult f1 = run_sim(flash);
  const SimResult f2 = run_sim(flash);
  EXPECT_EQ(f1.metrics.network_time, f2.metrics.network_time);
  EXPECT_EQ(f1.metrics.hits, f2.metrics.hits);
  EXPECT_EQ(f1.churn_events, 0u);

  SimSpec churn = quick_multi_client_spec();
  churn.multi_client.churn_period = 300.0;
  churn.multi_client.churn_downtime = 50.0;
  const SimResult c1 = run_sim(churn);
  const SimResult c2 = run_sim(churn);
  EXPECT_GT(c1.churn_events, 0u);
  EXPECT_EQ(c1.churn_events, c2.churn_events);
  EXPECT_EQ(c1.metrics.network_time, c2.metrics.network_time);
  EXPECT_EQ(c1.metrics.requests, 1200u);

  SimSpec stormy = quick_multi_client_spec();
  stormy.link_schedule = {{200.0, 1.0, 0.0}, {60.0, 0.25, 2.0}};
  const SimResult s1 = run_sim(stormy);
  // Start-phase pricing re-times transfers but never re-plans: the
  // decision path matches the static-link run bit for bit.
  const SimResult calm = run_sim(quick_multi_client_spec());
  EXPECT_EQ(s1.metrics.demand_fetches, calm.metrics.demand_fetches);
  EXPECT_EQ(s1.metrics.prefetch_fetches, calm.metrics.prefetch_fetches);
  EXPECT_EQ(s1.metrics.solver_nodes, calm.metrics.solver_nodes);
  EXPECT_EQ(s1.metrics.network_time, calm.metrics.network_time);
  EXPECT_GT(s1.metrics.mean_access_time(), calm.metrics.mean_access_time());
}

TEST(SimRuntime, NetsimDesHonorsLinkScheduleInStaleEstimateRegime) {
  SimSpec calm_spec;
  calm_spec.driver = SimDriverKind::NetsimDes;
  calm_spec.workload.n_items = 25;
  calm_spec.workload.out_degree_lo = 4;
  calm_spec.workload.out_degree_hi = 7;
  calm_spec.cache_size = 6;
  calm_spec.requests = 500;
  calm_spec.seed = 13;
  SimSpec stormy_spec = calm_spec;
  stormy_spec.link_schedule = {{200.0, 1.0, 0.0}, {60.0, 0.25, 2.0}};
  const SimResult calm = run_sim(calm_spec);
  const SimResult stormy = run_sim(stormy_spec);
  const SimResult again = run_sim(stormy_spec);
  // Planning keeps consuming the grounded static catalog (the stale
  // estimate), so fetch decisions and the planning-side network metrics
  // are unchanged; only realized waiting moves.
  EXPECT_EQ(calm.metrics.demand_fetches, stormy.metrics.demand_fetches);
  EXPECT_EQ(calm.metrics.prefetch_fetches, stormy.metrics.prefetch_fetches);
  EXPECT_EQ(calm.metrics.solver_nodes, stormy.metrics.solver_nodes);
  EXPECT_EQ(calm.metrics.network_time, stormy.metrics.network_time);
  EXPECT_GT(stormy.metrics.mean_access_time(),
            calm.metrics.mean_access_time());
  EXPECT_EQ(stormy.metrics.mean_access_time(),
            again.metrics.mean_access_time());
}

TEST(SimRuntime, AdversarialWorkloadRunsOnEveryHonoringDriver) {
  // prefetch_cache, netsim_des and multi_client all accept the
  // adversarial chain (it is a plain MarkovSource under the hood).
  SimSpec pc;
  pc.driver = SimDriverKind::PrefetchCache;
  pc.workload.kind = SimWorkloadKind::Adversarial;
  pc.workload.n_items = 24;
  pc.requests = 600;
  const SimResult a = run_sim(pc);
  EXPECT_EQ(a.metrics.requests, 600u);
  EXPECT_GT(a.metrics.prefetch_fetches, 0u);

  SimSpec des = pc;
  des.driver = SimDriverKind::NetsimDes;
  const SimResult b = run_sim(des);
  EXPECT_EQ(b.metrics.requests, 600u);

  // Oracle multi_client builds its chains from a MarkovSourceConfig, so
  // the adversarial stream rides the scripted learned path there.
  SimSpec mc = quick_multi_client_spec();
  mc.workload.kind = SimWorkloadKind::Adversarial;
  mc.workload.n_items = 24;
  EXPECT_THROW(run_sim(mc), std::invalid_argument);
  mc.predictor = PredictorKind::Markov1;
  mc.predictor_min_prob = 0.02;
  mc.predictor_warmup = 32;
  const SimResult c = run_sim(mc);
  EXPECT_EQ(c.metrics.requests, 1200u);
  EXPECT_EQ(run_sim(mc).metrics.network_time, c.metrics.network_time);
}

TEST(SimRuntime, HostileFieldsRejectedWhereNotHonored) {
  // link_schedule outside the DES drivers (reject, don't drop).
  SimSpec pc;
  pc.link_schedule = {{100.0, 1.0, 0.0}};
  EXPECT_THROW(run_sim(pc), std::invalid_argument);

  SimSpec scen;
  scen.driver = SimDriverKind::Scenario;
  scen.predictor = PredictorKind::Markov1;
  scen.link_schedule = {{100.0, 1.0, 0.0}};
  EXPECT_THROW(run_sim(scen), std::invalid_argument);

  // Hostile multi_client knobs on a single-client driver.
  SimSpec flash;
  flash.multi_client.phase_align = 0.5;
  EXPECT_THROW(run_sim(flash), std::invalid_argument);
  SimSpec churn;
  churn.driver = SimDriverKind::NetsimDes;
  churn.multi_client.churn_period = 100.0;
  EXPECT_THROW(run_sim(churn), std::invalid_argument);

  // Out-of-range knobs on the honoring driver.
  SimSpec bad = quick_multi_client_spec();
  bad.multi_client.phase_align = 1.5;
  EXPECT_THROW(run_sim(bad), std::invalid_argument);
  bad = quick_multi_client_spec();
  bad.link_schedule = {{0.0, 1.0, 0.0}};
  EXPECT_THROW(run_sim(bad), std::invalid_argument);
}

TEST(SimRuntime, InvalidSpecsAreRejected) {
  SimSpec spec;
  spec.driver = SimDriverKind::PrefetchOnly;
  spec.workload.kind = SimWorkloadKind::Markov;  // not iid
  EXPECT_THROW(run_sim(spec), std::invalid_argument);

  SimSpec trace_iid;
  trace_iid.driver = SimDriverKind::PrefetchCache;
  trace_iid.workload.kind = SimWorkloadKind::TraceText;
  EXPECT_THROW(run_sim(trace_iid), std::invalid_argument);

  SimSpec scenario_oracle;
  scenario_oracle.driver = SimDriverKind::Scenario;
  scenario_oracle.predictor = PredictorKind::Oracle;
  scenario_oracle.workload.n_items = 24;
  EXPECT_THROW(run_sim(scenario_oracle), std::invalid_argument);
}

// ---- simctl substrate ---------------------------------------------------

TEST(SimShard, OwnershipPartitionsEveryIndexExactlyOnce) {
  for (const std::size_t shards : {1UL, 2UL, 3UL, 7UL}) {
    for (std::size_t index = 0; index < 40; ++index) {
      std::size_t owners = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        if (shard_owns(index, s, shards)) ++owners;
      }
      EXPECT_EQ(owners, 1u) << "index " << index << " shards " << shards;
    }
  }
  EXPECT_THROW(shard_owns(0, 2, 2), std::invalid_argument);
  EXPECT_THROW(shard_owns(0, 0, 0), std::invalid_argument);
}

// Emits the CSV document for the indices a shard owns (header + rows).
std::string emit_shard(const std::vector<SimSpec>& sweep,
                       const std::vector<SimResult>& results,
                       std::size_t shard, std::size_t shards) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.row(sim_csv_header());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (shard_owns(i, shard, shards)) {
      append_sim_csv_row(writer, i, sweep[i], results[i]);
    }
  }
  return os.str();
}

TEST(SimShard, MergedShardCsvEqualsSingleRun) {
  // A small sweep, every spec run once; shard documents are slices of the
  // same results, so the merge must reproduce the single document byte
  // for byte (this is the in-process version of the simctl_shard_merge
  // ctest, which exercises the real binary).
  std::vector<SimSpec> sweep;
  for (const PrefetchPolicy policy : {PrefetchPolicy::KP,
                                      PrefetchPolicy::SKP}) {
    for (const std::size_t cache : {4UL, 8UL, 12UL}) {
      SimSpec spec;
      spec.policy = policy;
      spec.cache_size = cache;
      spec.requests = 300;
      spec.seed = 2;
      sweep.push_back(spec);
    }
  }
  std::vector<SimResult> results;
  results.reserve(sweep.size());
  for (const SimSpec& spec : sweep) results.push_back(run_sim(spec));

  const std::string single = emit_shard(sweep, results, 0, 1);
  for (const std::size_t shards : {2UL, 3UL}) {
    std::vector<std::string> docs;
    for (std::size_t s = 0; s < shards; ++s) {
      docs.push_back(emit_shard(sweep, results, s, shards));
    }
    EXPECT_EQ(merge_sharded_csv(docs), single) << shards << " shards";
  }
}

TEST(SimCsv, HostileColumnsAndPerClientRows) {
  SimSpec spec = quick_multi_client_spec();
  spec.multi_client.phase_align = 0.8;
  spec.multi_client.churn_period = 300.0;
  spec.multi_client.churn_downtime = 50.0;
  spec.link_schedule = {{200.0, 1.0, 0.0}, {60.0, 0.25, 2.0}};
  const SimResult res = run_sim(spec);

  const std::vector<std::string> header = sim_csv_header();
  auto col = [&](const std::string& name) {
    const auto it = std::find(header.begin(), header.end(), name);
    EXPECT_NE(it, header.end()) << name;
    return static_cast<std::size_t>(it - header.begin());
  };
  std::ostringstream os;
  CsvWriter writer(os);
  writer.row(header);
  append_sim_csv_row(writer, 7, spec, res);
  std::istringstream lines(os.str());
  std::string line;
  std::getline(lines, line);  // header
  ASSERT_TRUE(std::getline(lines, line));
  std::vector<std::string> fields;
  std::istringstream fs(line);
  for (std::string f; std::getline(fs, f, ',');) fields.push_back(f);
  ASSERT_EQ(fields.size(), header.size());
  EXPECT_EQ(std::stod(fields[col("phase_align")]), 0.8);
  EXPECT_EQ(std::stod(fields[col("churn_period")]), 300.0);
  EXPECT_EQ(fields[col("link_phases")], "2");
  EXPECT_EQ(std::stoull(fields[col("churn_events")]), res.churn_events);
  EXPECT_GT(res.churn_events, 0u);

  // The per-client companion document: one row per client keyed by the
  // main document's spec index, quotas summing to the aggregate.
  std::ostringstream pcs;
  CsvWriter pc_writer(pcs);
  pc_writer.row(per_client_csv_header());
  append_per_client_csv_rows(pc_writer, 7, spec, res);
  std::istringstream pc_lines(pcs.str());
  std::getline(pc_lines, line);  // header
  std::uint64_t total_requests = 0;
  std::size_t rows = 0;
  while (std::getline(pc_lines, line)) {
    std::vector<std::string> pf;
    std::istringstream pfs(line);
    for (std::string f; std::getline(pfs, f, ',');) pf.push_back(f);
    ASSERT_EQ(pf.size(), per_client_csv_header().size());
    EXPECT_EQ(pf[0], "7");
    EXPECT_EQ(std::stoull(pf[1]), rows);  // client column is dense
    total_requests += std::stoull(pf[2]);
    ++rows;
  }
  EXPECT_EQ(rows, 3u);
  EXPECT_EQ(total_requests, res.metrics.requests);
}

TEST(SimShard, MergeRejectsBrokenDocuments) {
  const std::string header = "index,x\n";
  EXPECT_THROW(merge_sharded_csv({}), std::invalid_argument);
  // Missing index 1.
  EXPECT_THROW(merge_sharded_csv({header + "0,a\n", header + "2,c\n"}),
               std::invalid_argument);
  // Duplicate index.
  EXPECT_THROW(merge_sharded_csv({header + "0,a\n", header + "0,b\n"}),
               std::invalid_argument);
  // Header mismatch.
  EXPECT_THROW(merge_sharded_csv({header + "0,a\n", "index,y\n1,b\n"}),
               std::invalid_argument);
  // Non-numeric index.
  EXPECT_THROW(merge_sharded_csv({header + "zero,a\n"}),
               std::invalid_argument);
  // Happy path, input order irrelevant.
  EXPECT_EQ(merge_sharded_csv({header + "1,b\n", header + "0,a\n"}),
            header + "0,a\n1,b\n");
}

TEST(SimShard, MergeRejectsInterruptedPartialShards) {
  // A signal-interrupted simctl run emits a valid partial document with
  // a "# interrupted at spec N" trailer. Merging one must fail loudly —
  // accepting it would silently drop the specs the interrupted shard
  // never ran.
  const std::string header = "index,x\n";
  const std::string partial = header + "0,a\n# interrupted at spec 1\n";
  EXPECT_THROW(merge_sharded_csv({partial}), std::invalid_argument);
  EXPECT_THROW(merge_sharded_csv({header + "1,b\n", partial}),
               std::invalid_argument);
  // The diagnostic names the offending shard and the trailer.
  try {
    merge_sharded_csv({partial}, {"shard0.csv"});
    FAIL() << "expected rejection of the interrupted shard";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard0.csv"), std::string::npos) << what;
    EXPECT_NE(what.find("interrupted"), std::string::npos) << what;
  }
}

TEST(SimShard, MergeInterleavesPerClientCompanions) {
  // A per-client companion document (second column `client`) merges on
  // the (index, client) pair: shards own disjoint spec indices but every
  // shard carries ALL of its specs' client rows.
  const std::string header = "index,client,x\n";
  const std::string shard0 = header + "0,0,a\n0,1,b\n2,0,e\n2,1,f\n";
  const std::string shard1 = header + "1,0,c\n1,1,d\n";
  EXPECT_EQ(merge_sharded_csv({shard0, shard1}),
            header + "0,0,a\n0,1,b\n1,0,c\n1,1,d\n2,0,e\n2,1,f\n");
  // Input order irrelevant, like the main document.
  EXPECT_EQ(merge_sharded_csv({shard1, shard0}),
            merge_sharded_csv({shard0, shard1}));
}

TEST(SimShard, MergeRejectsBrokenPerClientDocuments) {
  const std::string header = "index,client,x\n";
  // Client rows must be dense from 0 within each index.
  EXPECT_THROW(merge_sharded_csv({header + "0,0,a\n0,2,c\n"}),
               std::invalid_argument);
  EXPECT_THROW(merge_sharded_csv({header + "0,1,b\n"}),
               std::invalid_argument);
  // Spec indices must still cover 0..max with no gap.
  EXPECT_THROW(merge_sharded_csv({header + "0,0,a\n2,0,c\n"}),
               std::invalid_argument);
  // Duplicate (index, client) pair across shards.
  EXPECT_THROW(
      merge_sharded_csv({header + "0,0,a\n", header + "0,0,b\n"}),
      std::invalid_argument);
  // Non-numeric client cell.
  EXPECT_THROW(merge_sharded_csv({header + "0,zero,a\n"}),
               std::invalid_argument);
  // A per-client shard cannot merge with a plain shard (header check).
  EXPECT_THROW(
      merge_sharded_csv({header + "0,0,a\n", "index,x\n1,b\n"}),
      std::invalid_argument);
}

}  // namespace
}  // namespace skp
