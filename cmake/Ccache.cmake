# Auto-detect ccache and route compiler invocations through it. Opt out
# with -DSKP_USE_CCACHE=OFF (e.g. for benchmarking cold-build times).
option(SKP_USE_CCACHE "Use ccache as compiler launcher when available" ON)

if(SKP_USE_CCACHE AND NOT CMAKE_CXX_COMPILER_LAUNCHER)
  find_program(SKP_CCACHE_PROGRAM ccache)
  if(SKP_CCACHE_PROGRAM)
    message(STATUS "ccache found: ${SKP_CCACHE_PROGRAM}")
    set(CMAKE_CXX_COMPILER_LAUNCHER "${SKP_CCACHE_PROGRAM}")
    set(CMAKE_C_COMPILER_LAUNCHER "${SKP_CCACHE_PROGRAM}")
  endif()
endif()
