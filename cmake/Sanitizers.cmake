# SKP_SANITIZE=ON wires AddressSanitizer + UndefinedBehaviorSanitizer into
# every target that links skp_options, giving a second ctest configuration
# (see the `asan` preset in CMakePresets.json and the CI sanitizer job).
# Failures are fatal: UBSan reports abort instead of printing and carrying on.

function(skp_apply_sanitizers target)
  if(NOT SKP_SANITIZE)
    return()
  endif()
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang|AppleClang")
    message(WARNING "SKP_SANITIZE is only wired up for GCC/Clang; ignoring")
    return()
  endif()
  set(_flags
    -fsanitize=address,undefined
    -fno-sanitize-recover=all
    -fno-omit-frame-pointer)
  target_compile_options(${target} INTERFACE ${_flags})
  target_link_options(${target} INTERFACE ${_flags})
  message(STATUS "Sanitizers enabled (ASan + UBSan) via ${target}")
endfunction()
