# SKP_SANITIZE=ON wires AddressSanitizer + UndefinedBehaviorSanitizer into
# every target that links skp_options, giving a second ctest configuration
# (see the `asan` preset in CMakePresets.json and the CI sanitizer job).
# Failures are fatal: UBSan reports abort instead of printing and carrying on.

function(skp_apply_sanitizers target)
  if(NOT SKP_SANITIZE AND NOT SKP_TSAN)
    return()
  endif()
  if(SKP_SANITIZE AND SKP_TSAN)
    message(FATAL_ERROR "SKP_SANITIZE and SKP_TSAN are mutually exclusive: "
      "ThreadSanitizer cannot be combined with AddressSanitizer")
  endif()
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang|AppleClang")
    message(WARNING "SKP_SANITIZE/SKP_TSAN are only wired up for GCC/Clang; "
      "ignoring")
    return()
  endif()
  if(SKP_TSAN)
    set(_flags
      -fsanitize=thread
      -fno-omit-frame-pointer)
    set(_label "TSan")
  else()
    set(_flags
      -fsanitize=address,undefined
      -fno-sanitize-recover=all
      -fno-omit-frame-pointer)
    set(_label "ASan + UBSan")
  endif()
  target_compile_options(${target} INTERFACE ${_flags})
  target_link_options(${target} INTERFACE ${_flags})
  message(STATUS "Sanitizers enabled (${_label}) via ${target}")
endfunction()
